#include "state/version_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

VersionStore::VersionStore(size_t num_items) {
  chains_.reserve(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    chains_.push_back({Version{}});  // initial version: ts 0, value 0
  }
}

std::vector<VersionStore::Version>& VersionStore::EnsureChain(ItemId item) {
  while (chains_.size() <= item) chains_.push_back({Version{}});
  return chains_[item];
}

size_t VersionStore::NewestAtOrBelow(const std::vector<Version>& chain,
                                     uint64_t ts, bool committed_only) {
  for (size_t i = chain.size(); i-- > 0;) {
    if (chain[i].writer_ts > ts) continue;
    if (committed_only && !chain[i].committed) continue;
    return i;
  }
  return SIZE_MAX;
}

Result<VersionView> VersionStore::Peek(ItemId item, uint64_t ts) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (item >= chains_.size()) {
    // Untouched item: logically the bare initial version.
    return VersionView{};
  }
  const std::vector<Version>& chain = chains_[item];
  size_t i = NewestAtOrBelow(chain, ts, /*committed_only=*/false);
  NSE_CHECK_MSG(i != SIZE_MAX, "chain lost its initial version");
  const Version& v = chain[i];
  return VersionView{v.writer_ts, v.writer, v.value, v.committed};
}

Result<VersionView> VersionStore::ReadAtTimestamp(ItemId item, uint64_t ts) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Version>& chain = EnsureChain(item);
  size_t i = NewestAtOrBelow(chain, ts, /*committed_only=*/false);
  NSE_CHECK_MSG(i != SIZE_MAX, "chain lost its initial version");
  Version& v = chain[i];
  v.rts = std::max(v.rts, ts);
  return VersionView{v.writer_ts, v.writer, v.value, v.committed};
}

Result<VersionView> VersionStore::ReadCommittedAt(ItemId item,
                                                  uint64_t ts) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (item >= chains_.size()) return VersionView{};
  const std::vector<Version>& chain = chains_[item];
  size_t i = NewestAtOrBelow(chain, ts, /*committed_only=*/true);
  NSE_CHECK_MSG(i != SIZE_MAX, "chain lost its committed initial version");
  const Version& v = chain[i];
  return VersionView{v.writer_ts, v.writer, v.value, v.committed};
}

Status VersionStore::InstallVersion(ItemId item, uint64_t writer_ts,
                                    VersionWriter writer, int64_t value,
                                    bool committed) {
  if (writer_ts == 0) {
    return Status::InvalidArgument("writer_ts 0 is the initial version");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Version>& chain = EnsureChain(item);
  // Stamp-sorted insert from the tail (stamps mostly arrive ascending).
  size_t pos = chain.size();
  while (pos > 0 && chain[pos - 1].writer_ts > writer_ts) --pos;
  if (pos > 0 && chain[pos - 1].writer_ts == writer_ts) {
    Version& existing = chain[pos - 1];
    if (existing.writer != writer) {
      return Status::InvalidArgument(
          StrCat("stamp ", writer_ts, " already installed by writer ",
                 existing.writer));
    }
    existing.value = value;  // same incarnation overwriting its own write
    existing.committed = committed;
    return Status::Ok();
  }
  chain.insert(chain.begin() + static_cast<ptrdiff_t>(pos),
               Version{writer_ts, writer, value, committed, 0});
  return Status::Ok();
}

Status VersionStore::CommitVersion(ItemId item, uint64_t writer_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (item >= chains_.size()) {
    return Status::NotFound("commit of a version on an untouched item");
  }
  for (Version& v : chains_[item]) {
    if (v.writer_ts == writer_ts) {
      v.committed = true;
      return Status::Ok();
    }
  }
  return Status::NotFound(
      StrCat("no version with stamp ", writer_ts, " to commit"));
}

Status VersionStore::RemoveVersion(ItemId item, uint64_t writer_ts) {
  if (writer_ts == 0) {
    return Status::InvalidArgument("the initial version cannot be removed");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (item >= chains_.size()) return Status::Ok();  // nothing installed
  std::vector<Version>& chain = chains_[item];
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].writer_ts == writer_ts) {
      chain.erase(chain.begin() + static_cast<ptrdiff_t>(i));
      return Status::Ok();
    }
  }
  return Status::Ok();  // idempotent: chaos re-aborts retracted txns
}

Result<bool> VersionStore::HasReadBarrier(ItemId item, uint64_t ts) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (item >= chains_.size()) return false;
  for (const Version& v : chains_[item]) {
    if (v.writer_ts >= ts) break;  // stamp-sorted: nothing older follows
    if (v.rts > ts) return true;
  }
  return false;
}

size_t VersionStore::TruncateBelow(uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t reclaimed = 0;
  for (std::vector<Version>& chain : chains_) {
    size_t floor = NewestAtOrBelow(chain, watermark, /*committed_only=*/true);
    if (floor == SIZE_MAX || floor == 0) continue;
    // Fold the dropped versions' read stamps into the survivor so MVTO's
    // late-write check still sees every read the chain ever served below
    // the watermark. Uncommitted versions below the floor are kept (their
    // writers are active; an active writer's stamp is never below the
    // oldest active snapshot under the owning policies, but the store
    // does not assume that).
    std::vector<Version> kept;
    kept.reserve(chain.size() - floor);
    uint64_t folded_rts = chain[floor].rts;
    for (size_t i = 0; i < floor; ++i) {
      if (chain[i].committed) {
        folded_rts = std::max(folded_rts, chain[i].rts);
        ++reclaimed;
      } else {
        kept.push_back(chain[i]);
      }
    }
    const size_t survivor = kept.size();
    for (size_t i = floor; i < chain.size(); ++i) kept.push_back(chain[i]);
    kept[survivor].rts = folded_rts;
    chain = std::move(kept);
  }
  truncated_ += reclaimed;
  return reclaimed;
}

size_t VersionStore::total_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const std::vector<Version>& chain : chains_) total += chain.size();
  return total;
}

size_t VersionStore::uncommitted_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const std::vector<Version>& chain : chains_) {
    for (const Version& v : chain) {
      if (!v.committed) ++total;
    }
  }
  return total;
}

size_t VersionStore::max_chain_length() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t longest = 0;
  for (const std::vector<Version>& chain : chains_) {
    longest = std::max(longest, chain.size());
  }
  return longest;
}

size_t VersionStore::truncated_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_;
}

size_t VersionStore::num_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chains_.size();
}

}  // namespace nse
