// Database catalog: the finite set D of data items, each with a name and a
// finite domain, plus DataSet — subsets d ⊆ D used for restrictions,
// conjunct data sets, and read/write sets.

#ifndef NSE_STATE_DATABASE_H_
#define NSE_STATE_DATABASE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "state/domain.h"

namespace nse {

/// Dense identifier of a data item within one Database.
using ItemId = uint32_t;

/// A set of data items (d ⊆ D), stored as a sorted unique vector.
class DataSet {
 public:
  /// The empty set.
  DataSet() = default;

  /// Builds a set from arbitrary ids (sorted, deduplicated).
  explicit DataSet(std::vector<ItemId> ids);
  DataSet(std::initializer_list<ItemId> ids);

  /// True iff `item` is a member.
  bool Contains(ItemId item) const;

  /// Inserts `item` (no-op if present).
  void Insert(ItemId item);

  /// Removes `item` (no-op if absent).
  void Remove(ItemId item);

  /// Number of members.
  size_t size() const { return ids_.size(); }
  /// True iff the set is empty.
  bool empty() const { return ids_.empty(); }

  /// Set union a ∪ b.
  static DataSet Union(const DataSet& a, const DataSet& b);
  /// Set intersection a ∩ b.
  static DataSet Intersect(const DataSet& a, const DataSet& b);
  /// Set difference a − b.
  static DataSet Minus(const DataSet& a, const DataSet& b);

  /// True iff a ∩ b = ∅ (the paper's standing assumption for conjuncts).
  static bool Disjoint(const DataSet& a, const DataSet& b);

  /// True iff this ⊆ other.
  bool IsSubsetOf(const DataSet& other) const;

  /// Members in ascending order.
  const std::vector<ItemId>& items() const { return ids_; }

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  friend bool operator==(const DataSet& a, const DataSet& b) {
    return a.ids_ == b.ids_;
  }

 private:
  std::vector<ItemId> ids_;
};

/// The database catalog D. Items are registered once and addressed by
/// ItemId thereafter.
class Database {
 public:
  Database() = default;

  /// Registers a new item. Fails with InvalidArgument on duplicate names or
  /// empty names.
  Result<ItemId> AddItem(std::string name, Domain domain);

  /// Convenience: registers many int-range items sharing one domain.
  Status AddIntItems(const std::vector<std::string>& names, int64_t lo,
                     int64_t hi);

  /// Id of a named item, or NotFound.
  Result<ItemId> Find(std::string_view name) const;

  /// Id of a named item; aborts if unknown (for test/example literals).
  ItemId MustFind(std::string_view name) const;

  /// Name of an item id (must be valid).
  const std::string& NameOf(ItemId item) const;

  /// Domain of an item id (must be valid).
  const Domain& DomainOf(ItemId item) const;

  /// Number of registered items.
  size_t num_items() const { return names_.size(); }

  /// The set of all items (the full database D).
  DataSet AllItems() const;

  /// Builds a DataSet from item names; aborts on unknown names.
  DataSet SetOf(std::initializer_list<std::string_view> names) const;

  /// Renders a DataSet as "{a, b, c}" using item names.
  std::string DataSetToString(const DataSet& set) const;

 private:
  std::vector<std::string> names_;
  std::vector<Domain> domains_;
  std::unordered_map<std::string, ItemId> by_name_;
};

}  // namespace nse

#endif  // NSE_STATE_DATABASE_H_
