#include "state/value.h"

#include "common/string_util.h"

namespace nse {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  if (is_int()) return ValueType::kInt;
  if (is_bool()) return ValueType::kBool;
  return ValueType::kString;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_bool()) return AsBool() ? "true" : "false";
  return StrCat("\"", AsString(), "\"");
}

bool operator<(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type());
  }
  switch (a.type()) {
    case ValueType::kInt:
      return a.AsInt() < b.AsInt();
    case ValueType::kBool:
      return a.AsBool() < b.AsBool();
    case ValueType::kString:
      return a.AsString() < b.AsString();
  }
  return false;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace nse
