// DbState: a (possibly partial) database state DS — a set of pairs
// (item, value) with at most one value per item (paper §2.1). Supports the
// paper's restriction DS^d and the union ⊔, which is *undefined* (an error)
// when the operands disagree on a common item.

#ifndef NSE_STATE_DB_STATE_H_
#define NSE_STATE_DB_STATE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "state/database.h"
#include "state/value.h"

namespace nse {

/// A partial mapping from data items to values.
///
/// A *total* state over a Database assigns every item; restrictions and
/// read-sets are naturally partial. DbState is value-semantic and cheap for
/// the small symbolic databases this library targets.
class DbState {
 public:
  /// The empty (nowhere-defined) state.
  DbState() = default;

  /// Builds a state from explicit (item, value) pairs; later pairs must not
  /// contradict earlier ones (aborts on contradiction — programmer error).
  static DbState Of(std::initializer_list<std::pair<ItemId, Value>> pairs);

  /// Builds a state by item name against a database catalog.
  static DbState OfNamed(
      const Database& db,
      std::initializer_list<std::pair<std::string_view, Value>> pairs);

  /// The value of `item`, or nullopt if unassigned.
  std::optional<Value> Get(ItemId item) const;

  /// The value of `item`; aborts if unassigned.
  const Value& MustGet(ItemId item) const;

  /// Assigns `item := value` (overwrites any existing binding).
  void Set(ItemId item, Value value);

  /// Removes the binding of `item` (no-op if unassigned).
  void Unset(ItemId item);

  /// True iff `item` has a value.
  bool Has(ItemId item) const { return values_.count(item) != 0; }

  /// The set of assigned items.
  DataSet AssignedItems() const;

  /// Number of assigned items.
  size_t size() const { return values_.size(); }
  /// True iff no item is assigned.
  bool empty() const { return values_.empty(); }

  /// The paper's DS^d: restriction to the items in `d`.
  DbState Restrict(const DataSet& d) const;

  /// The paper's ⊔: union of two states; FailedPrecondition if they assign
  /// different values to a common item (the union is then undefined).
  static Result<DbState> Union(const DbState& a, const DbState& b);

  /// Like Union but overwrites: bindings in `update` win. This is the state
  /// transformer used by Definition 4 (state(T_{i-1}) minus WS, plus writes).
  static DbState Override(const DbState& base, const DbState& update);

  /// True iff every binding of this state also holds in `other`.
  bool IsSubstateOf(const DbState& other) const;

  /// True iff the two states agree on every item both assign.
  static bool Compatible(const DbState& a, const DbState& b);

  /// True iff this state assigns every item of `db`.
  bool IsTotalOver(const Database& db) const;

  /// True iff every assigned value lies in its item's declared domain.
  bool RespectsDomains(const Database& db) const;

  /// Items assigned by both states but with different values.
  DataSet DisagreementItems(const DbState& other) const;

  /// Renders e.g. "{(a, 5), (b, -1)}" using catalog names.
  std::string ToString(const Database& db) const;

  /// Iteration over (item, value) bindings in ascending item order.
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  friend bool operator==(const DbState& a, const DbState& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const DbState& a, const DbState& b) {
    return !(a == b);
  }

 private:
  std::map<ItemId, Value> values_;
};

}  // namespace nse

#endif  // NSE_STATE_DB_STATE_H_
