// Domain: Dom(d') for a data item — the finite set of values the item may
// take. Explicit finite domains make the restriction-consistency oracle
// (DESIGN.md S5) decidable and exact.

#ifndef NSE_STATE_DOMAIN_H_
#define NSE_STATE_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "state/value.h"

namespace nse {

/// A finite value domain for one data item.
class Domain {
 public:
  /// Integers in [lo, hi] inclusive. Requires lo <= hi.
  static Domain IntRange(int64_t lo, int64_t hi);

  /// An explicit finite set of integers (deduplicated, sorted).
  static Domain IntSet(std::vector<int64_t> values);

  /// {false, true}.
  static Domain Bool();

  /// An explicit finite set of strings (deduplicated, sorted).
  static Domain StringSet(std::vector<std::string> values);

  /// Default: small symmetric integer range, convenient for tests.
  Domain() : Domain(IntRange(-16, 16)) {}

  /// True iff `v` belongs to this domain.
  bool Contains(const Value& v) const;

  /// Number of values in the domain.
  uint64_t size() const;

  /// The i-th value in the domain's canonical (ascending) order; i < size().
  Value At(uint64_t i) const;

  /// Materializes all values in canonical order. Fails with OutOfRange if
  /// size() exceeds `limit` (guards accidental huge enumerations).
  Result<std::vector<Value>> Enumerate(uint64_t limit = 1 << 20) const;

  /// The element type of this domain.
  ValueType value_type() const;

  /// Renders e.g. "int[-16..16]", "int{1,5,9}", "bool", "string{...}".
  std::string ToString() const;

 private:
  enum class Kind { kIntRange, kIntSet, kBool, kStringSet };
  Domain(Kind kind) : kind_(kind) {}  // NOLINT(runtime/explicit)

  Kind kind_;
  int64_t lo_ = 0;
  int64_t hi_ = 0;
  std::vector<int64_t> int_values_;
  std::vector<std::string> string_values_;
};

}  // namespace nse

#endif  // NSE_STATE_DOMAIN_H_
