#include "state/db_state.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

DbState DbState::Of(std::initializer_list<std::pair<ItemId, Value>> pairs) {
  DbState state;
  for (const auto& [item, value] : pairs) {
    auto it = state.values_.find(item);
    NSE_CHECK_MSG(it == state.values_.end() || it->second == value,
                  "contradictory bindings for item %u", item);
    state.values_.insert_or_assign(item, value);
  }
  return state;
}

DbState DbState::OfNamed(
    const Database& db,
    std::initializer_list<std::pair<std::string_view, Value>> pairs) {
  DbState state;
  for (const auto& [name, value] : pairs) {
    state.Set(db.MustFind(name), value);
  }
  return state;
}

std::optional<Value> DbState::Get(ItemId item) const {
  auto it = values_.find(item);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

const Value& DbState::MustGet(ItemId item) const {
  auto it = values_.find(item);
  NSE_CHECK_MSG(it != values_.end(), "item %u is unassigned", item);
  return it->second;
}

void DbState::Set(ItemId item, Value value) {
  values_.insert_or_assign(item, std::move(value));
}

void DbState::Unset(ItemId item) { values_.erase(item); }

DataSet DbState::AssignedItems() const {
  std::vector<ItemId> ids;
  ids.reserve(values_.size());
  for (const auto& [item, value] : values_) ids.push_back(item);
  return DataSet(std::move(ids));
}

DbState DbState::Restrict(const DataSet& d) const {
  DbState out;
  // Iterate over the smaller side.
  if (d.size() < values_.size()) {
    for (ItemId item : d) {
      auto it = values_.find(item);
      if (it != values_.end()) out.values_.emplace(item, it->second);
    }
  } else {
    for (const auto& [item, value] : values_) {
      if (d.Contains(item)) out.values_.emplace(item, value);
    }
  }
  return out;
}

Result<DbState> DbState::Union(const DbState& a, const DbState& b) {
  DbState out = a;
  for (const auto& [item, value] : b.values_) {
    auto [it, inserted] = out.values_.emplace(item, value);
    if (!inserted && it->second != value) {
      return Status::FailedPrecondition(
          StrCat("union undefined: item ", item, " bound to ",
                 it->second.ToString(), " and ", value.ToString()));
    }
  }
  return out;
}

DbState DbState::Override(const DbState& base, const DbState& update) {
  DbState out = base;
  for (const auto& [item, value] : update.values_) {
    out.values_.insert_or_assign(item, value);
  }
  return out;
}

bool DbState::IsSubstateOf(const DbState& other) const {
  for (const auto& [item, value] : values_) {
    auto it = other.values_.find(item);
    if (it == other.values_.end() || it->second != value) return false;
  }
  return true;
}

bool DbState::Compatible(const DbState& a, const DbState& b) {
  const DbState& small = a.size() <= b.size() ? a : b;
  const DbState& large = a.size() <= b.size() ? b : a;
  for (const auto& [item, value] : small.values_) {
    auto it = large.values_.find(item);
    if (it != large.values_.end() && it->second != value) return false;
  }
  return true;
}

bool DbState::IsTotalOver(const Database& db) const {
  return values_.size() == db.num_items();
}

bool DbState::RespectsDomains(const Database& db) const {
  for (const auto& [item, value] : values_) {
    if (!db.DomainOf(item).Contains(value)) return false;
  }
  return true;
}

DataSet DbState::DisagreementItems(const DbState& other) const {
  std::vector<ItemId> out;
  for (const auto& [item, value] : values_) {
    auto it = other.values_.find(item);
    if (it != other.values_.end() && it->second != value) {
      out.push_back(item);
    }
  }
  return DataSet(std::move(out));
}

std::string DbState::ToString(const Database& db) const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& [item, value] : values_) {
    parts.push_back(StrCat("(", db.NameOf(item), ", ", value.ToString(), ")"));
  }
  return StrCat("{", StrJoin(parts, ", "), "}");
}

}  // namespace nse
