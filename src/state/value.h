// Value: the contents of a data item. The paper's constraint language ranges
// over numeric and string constants; we support 64-bit integers, booleans,
// and strings under the standard interpretation I.

#ifndef NSE_STATE_VALUE_H_
#define NSE_STATE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace nse {

/// Runtime type of a Value.
enum class ValueType { kInt, kBool, kString };

/// Human-readable type name ("int", "bool", "string").
const char* ValueTypeName(ValueType type);

/// A dynamically typed database value.
///
/// Values of different types never compare equal; ordering across types is
/// defined (int < bool < string) only so Values can key ordered containers.
class Value {
 public:
  /// Constructs the integer 0.
  Value() : rep_(int64_t{0}) {}
  /// Constructs an integer value.
  Value(int64_t v) : rep_(v) {}  // NOLINT(runtime/explicit)
  /// Constructs an integer value (disambiguates int literals).
  Value(int v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  /// Constructs a boolean value.
  Value(bool v) : rep_(v) {}  // NOLINT
  /// Constructs a string value.
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  /// Constructs a string value from a literal.
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT

  /// The runtime type of this value.
  ValueType type() const;

  /// True iff this value holds an integer.
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  /// True iff this value holds a boolean.
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  /// True iff this value holds a string.
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  /// The integer payload; must hold an integer.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  /// The boolean payload; must hold a boolean.
  bool AsBool() const { return std::get<bool>(rep_); }
  /// The string payload; must hold a string.
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value: integers as digits, booleans as true/false, strings
  /// quoted ("Jim").
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order; across types: int < bool < string.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<int64_t, bool, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace nse

#endif  // NSE_STATE_VALUE_H_
