// VersionStore: the multiversion value plane. Where ShardedValueStore
// keeps one mutable cell per item, this store keeps an immutable *chain*
// of versions `(writer_ts, value)` per item, so a timestamped reader can
// be served the newest version no younger than itself instead of blocking
// on (or clobbering) the current value. This is the database substrate of
// the multiversion schedulers (MVTO, snapshot isolation) — the widening
// of accepted executions the paper's program points at next once CSR is
// no longer the gate.
//
// Chains are append-in-stamp-order and versions never mutate once
// installed except for two monotone annotations: the committed flag
// (uncommitted → committed exactly once) and the read stamp `rts` (the
// max timestamp of any reader served that version, which is what MVTO's
// late-write check consults). Old versions are reclaimed epoch-style:
// TruncateBelow(watermark) drops every committed version an active
// snapshot can still not possibly need — everything strictly older than
// the newest committed version at or below the oldest active snapshot.
//
// Thread-safe under one internal mutex. The scheduler policies that own a
// store serialize their compound decisions under their own policy mutex
// anyway; the store's lock makes it independently safe for detached
// readers (benches, truncation sweeps, residual-state assertions).

#ifndef NSE_STATE_VERSION_STORE_H_
#define NSE_STATE_VERSION_STORE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "state/database.h"

namespace nse {

/// Writer identity of a version. Numerically a transaction id; 0 is the
/// pre-schedule initial version every chain starts with. (Declared as a
/// bare integer so the state layer stays below the txn layer.)
using VersionWriter = uint32_t;

/// What a timestamped read observed (a value-copy of one chain entry).
struct VersionView {
  uint64_t writer_ts = 0;     ///< stamp of the version's writer
  VersionWriter writer = 0;   ///< installing transaction (0 = initial)
  int64_t value = 0;
  bool committed = true;      ///< false while the writer is still active
};

/// Per-item immutable version chains with timestamped reads, append-only
/// installs, and epoch-style truncation below the oldest active snapshot.
class VersionStore {
 public:
  /// A store for items [0, num_items). Chains grow on demand past that,
  /// so a policy sized by transaction count can still serve any item.
  explicit VersionStore(size_t num_items = 0);

  /// Newest version with writer_ts <= ts, committed or not, without side
  /// effects. The initial version (writer_ts 0) always qualifies. Policies
  /// peek first to decide whether to wait out an uncommitted version.
  Result<VersionView> Peek(ItemId item, uint64_t ts) const;

  /// Newest version with writer_ts <= ts, folding `ts` into that
  /// version's read stamp (rts = max over readers served). This is the
  /// MVTO read: the recorded stamp is what rejects later-arriving older
  /// writes that the read logically overtook.
  Result<VersionView> ReadAtTimestamp(ItemId item, uint64_t ts);

  /// Newest *committed* version with writer_ts <= ts, no read stamp
  /// recorded — the snapshot-isolation read (chains stamped by commit
  /// time never serve an uncommitted version, and SI's validation is a
  /// write-set check, not an rts check).
  Result<VersionView> ReadCommittedAt(ItemId item, uint64_t ts) const;

  /// Appends version (writer_ts, value) by `writer`. Stamps are unique
  /// per chain: installing an existing stamp by the *same* writer
  /// replaces that version's value (a transaction overwriting its own
  /// write); by a different writer it is InvalidArgument.
  Status InstallVersion(ItemId item, uint64_t writer_ts, VersionWriter writer,
                        int64_t value, bool committed);

  /// Marks version `writer_ts` of `item` committed. Missing version is
  /// NotFound (a policy bookkeeping bug, not a benign race).
  Status CommitVersion(ItemId item, uint64_t writer_ts);

  /// Removes version `writer_ts` of `item` (an aborted writer retracting
  /// its install). Idempotent: removing an absent version is a no-op,
  /// because chaos re-aborts retracted transactions.
  Status RemoveVersion(ItemId item, uint64_t writer_ts);

  /// MVTO late-write check: true iff some version with writer_ts < ts was
  /// already read by a transaction younger than ts (rts > ts) — writing
  /// at `ts` now would invalidate that read.
  Result<bool> HasReadBarrier(ItemId item, uint64_t ts) const;

  /// Epoch-style reclamation. For each chain, finds the newest committed
  /// version with writer_ts <= watermark (the version a reader at the
  /// oldest active snapshot would be served) and drops every committed
  /// version strictly older, folding their read stamps into the survivor.
  /// Uncommitted versions are never dropped. Returns versions reclaimed.
  size_t TruncateBelow(uint64_t watermark);

  // ---- residual-state accessors (exact at quiescence) -----------------

  /// Stored versions across all chains, initial versions included.
  size_t total_versions() const;
  /// Versions still flagged uncommitted (must be 0 at quiescence).
  size_t uncommitted_versions() const;
  /// Longest chain (1 per touched item once fully truncated).
  size_t max_chain_length() const;
  /// Cumulative versions reclaimed by TruncateBelow.
  size_t truncated_versions() const;
  /// Items with a materialized chain.
  size_t num_items() const;

 private:
  struct Version {
    uint64_t writer_ts = 0;
    VersionWriter writer = 0;
    int64_t value = 0;
    bool committed = true;
    uint64_t rts = 0;  ///< max timestamp of any reader served this version
  };

  /// Chain of `item`, materialized (with its initial version) on demand.
  /// Caller holds mu_.
  std::vector<Version>& EnsureChain(ItemId item);

  /// Newest chain index with writer_ts <= ts, optionally committed-only.
  /// Chains are stamp-sorted, so this is a reverse scan from the tail.
  /// Returns SIZE_MAX when nothing qualifies (cannot happen for the
  /// any-commit-status variant: the initial version always does).
  static size_t NewestAtOrBelow(const std::vector<Version>& chain,
                                uint64_t ts, bool committed_only);

  mutable std::mutex mu_;
  std::vector<std::vector<Version>> chains_;
  size_t truncated_ = 0;
};

}  // namespace nse

#endif  // NSE_STATE_VERSION_STORE_H_
