#include "state/domain.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

Domain Domain::IntRange(int64_t lo, int64_t hi) {
  NSE_CHECK_MSG(lo <= hi, "IntRange [%lld, %lld]", static_cast<long long>(lo),
                static_cast<long long>(hi));
  Domain d(Kind::kIntRange);
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

Domain Domain::IntSet(std::vector<int64_t> values) {
  NSE_CHECK_MSG(!values.empty(), "IntSet domain must be non-empty");
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d(Kind::kIntSet);
  d.int_values_ = std::move(values);
  return d;
}

Domain Domain::Bool() { return Domain(Kind::kBool); }

Domain Domain::StringSet(std::vector<std::string> values) {
  NSE_CHECK_MSG(!values.empty(), "StringSet domain must be non-empty");
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d(Kind::kStringSet);
  d.string_values_ = std::move(values);
  return d;
}

bool Domain::Contains(const Value& v) const {
  switch (kind_) {
    case Kind::kIntRange:
      return v.is_int() && v.AsInt() >= lo_ && v.AsInt() <= hi_;
    case Kind::kIntSet:
      return v.is_int() && std::binary_search(int_values_.begin(),
                                              int_values_.end(), v.AsInt());
    case Kind::kBool:
      return v.is_bool();
    case Kind::kStringSet:
      return v.is_string() &&
             std::binary_search(string_values_.begin(), string_values_.end(),
                                v.AsString());
  }
  return false;
}

uint64_t Domain::size() const {
  switch (kind_) {
    case Kind::kIntRange:
      return static_cast<uint64_t>(hi_ - lo_) + 1;
    case Kind::kIntSet:
      return int_values_.size();
    case Kind::kBool:
      return 2;
    case Kind::kStringSet:
      return string_values_.size();
  }
  return 0;
}

Value Domain::At(uint64_t i) const {
  NSE_CHECK_MSG(i < size(), "Domain::At(%llu) with size %llu",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(size()));
  switch (kind_) {
    case Kind::kIntRange:
      return Value(lo_ + static_cast<int64_t>(i));
    case Kind::kIntSet:
      return Value(int_values_[i]);
    case Kind::kBool:
      return Value(i == 1);
    case Kind::kStringSet:
      return Value(string_values_[i]);
  }
  return Value();
}

Result<std::vector<Value>> Domain::Enumerate(uint64_t limit) const {
  if (size() > limit) {
    return Status::OutOfRange(
        StrCat("domain of size ", size(), " exceeds enumeration limit ",
               limit));
  }
  std::vector<Value> out;
  out.reserve(size());
  for (uint64_t i = 0; i < size(); ++i) out.push_back(At(i));
  return out;
}

ValueType Domain::value_type() const {
  switch (kind_) {
    case Kind::kIntRange:
    case Kind::kIntSet:
      return ValueType::kInt;
    case Kind::kBool:
      return ValueType::kBool;
    case Kind::kStringSet:
      return ValueType::kString;
  }
  return ValueType::kInt;
}

std::string Domain::ToString() const {
  switch (kind_) {
    case Kind::kIntRange:
      return StrCat("int[", lo_, "..", hi_, "]");
    case Kind::kIntSet:
      return StrCat("int{", StrJoin(int_values_, ","), "}");
    case Kind::kBool:
      return "bool";
    case Kind::kStringSet:
      return StrCat("string{", StrJoin(string_values_, ","), "}");
  }
  return "?";
}

}  // namespace nse
