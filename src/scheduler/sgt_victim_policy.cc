#include "scheduler/sgt_victim_policy.h"

#include <utility>

#include "common/logging.h"

namespace nse {

SgtVictimPolicy::SgtVictimPolicy(size_t num_txns)
    : SgtVictimPolicy(num_txns, Options()) {}

SgtVictimPolicy::SgtVictimPolicy(size_t num_txns, Options options)
    : SgtPolicy(num_txns, options) {}

Result<AccessGrant> SgtVictimPolicy::RequestAccess(TxnId txn,
                                                   const TxnScript& script,
                                                   size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  WaitTicket ticket = MakeTicket();
  std::lock_guard<std::mutex> lock(mu_);
  // Hot path is the baseline's short-circuiting probe: admissions and
  // below-threshold waits (the overwhelming majority of calls, re-probed
  // every blocked round) never enumerate the vetoing edges.
  VetoProbe probe = ProbeAccess(txn, script, step);
  if (!probe.vetoed) {
    consecutive_vetoes_[txn] = 0;
    AdmitAccess(txn, script, step);
    return Granted();
  }
  ++vetoes_;
  // Escalation timing is the baseline's, unchanged: wait while some
  // vetoing edge has an active source (its abort would retract the edge)
  // and the veto streak is below the threshold; escalate on committed-only
  // sources at once. What changes is the *resolution*: instead of always
  // restarting the requester, trace the would-be cycles and sacrifice the
  // cheapest active participant.
  if (probe.active_blocker &&
      ++consecutive_vetoes_[txn] < options_.max_consecutive_vetoes) {
    return WaitOn(ticket);
  }
  consecutive_vetoes_[txn] = 0;
  // Escalation (cold): enumerate the vetoing edges and pick the victim
  // across every would-be cycle — (score, txn id) lexicographic under the
  // configured cost rule. The requester heads each witness path, so the
  // candidate set is never empty; committed participants are immovable,
  // but the requester itself is always active.
  const bool predictive =
      options_.victim_cost == Options::VictimCost::kPredictive;
  // Every other cycle participant has admitted at least one access (it has
  // conflict edges), so its script length is on record; the requester may
  // be vetoed on its very first step, so seed its entry from the script in
  // hand.
  if (predictive) script_total_[txn] = script.steps.size();
  auto cost_of = [&](TxnId node) -> uint64_t {
    if (!predictive) return steps_recorded_[node];
    const uint64_t total = script_total_[node];
    const uint64_t done = steps_recorded_[node];
    const uint64_t remaining = total > done ? total - done : 0;
    return remaining + options_.victim_backoff * restart_count_[node];
  };
  std::vector<TxnId> vetoing = VetoingPredecessors(txn, script, step);
  NSE_CHECK_MSG(!vetoing.empty(), "probe vetoed but no vetoing edge found");
  TxnId victim = 0;
  std::pair<uint64_t, TxnId> best{UINT64_MAX, 0};
  for (TxnId from : vetoing) {
    auto path = graph().WouldCloseCycleWitness(from, txn);
    NSE_CHECK_MSG(path.has_value(),
                  "vetoing edge without a reachable cycle path");
    for (TxnId node : *path) {
      if (committed_[node]) continue;
      std::pair<uint64_t, TxnId> cost{cost_of(node), node};
      if (cost < best) {
        best = cost;
        victim = node;
      }
    }
  }
  NSE_CHECK_MSG(victim != 0, "cycle path had no active participant");
  if (victim == txn || cost_of(victim) >= cost_of(txn)) {
    // The requester is the cheapest loss (strictly-cheaper rule: a tie
    // goes to the baseline verdict): restart it, exactly like the
    // baseline escalation.
    ++restarts_requested_;
    return AbortSelf();
  }
  // Condemn the strictly cheaper participant: the driver rolls it back
  // right after this call returns (its Abort retracts the vetoing
  // edges), and the requester retries against a graph the retraction has
  // already uncycled. Under the sunk-cost rule every wound sacrifices
  // strictly less recorded work than the baseline's requester-restart
  // would have at this same decision point — the per-decision contract
  // wound_savings() accounts for; under the predictive rule the same
  // accumulator records the score margin.
  ++wounds_requested_;
  wound_savings_ += cost_of(txn) - cost_of(victim);
  Condemn(victim);
  return WaitOn(ticket);
}

}  // namespace nse
