// Delayed-read scheduling (§3.2): predicate-wise 2PL augmented with
// commit-gated reads — a transaction may not read an item whose most recent
// writer has not yet completed, even if the writer's lock was already
// released by the per-conjunct shrinking phase. The produced schedules are
// PWSR ∧ DR, the hypothesis of Theorem 2, without any restriction on
// transaction programs.

#ifndef NSE_SCHEDULER_DR_SCHEDULER_H_
#define NSE_SCHEDULER_DR_SCHEDULER_H_

#include <map>
#include <optional>
#include <set>

#include "scheduler/pw_two_phase_locking.h"

namespace nse {

/// PW-2PL + delayed reads.
class DelayedReadScheduler : public SchedulerPolicy {
 public:
  explicit DelayedReadScheduler(const IntegrityConstraint* ic) : inner_(ic) {}

  std::string name() const override { return "pw-2pl+dr"; }

  SchedulerDecision OnAccess(TxnId txn, const TxnScript& script,
                             size_t step) override;
  void AfterAccess(TxnId txn, const TxnScript& script, size_t step) override;
  void OnComplete(TxnId txn) override;
  void OnAbort(TxnId txn) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

 private:
  /// The incomplete transaction that last wrote `item`, if any.
  std::optional<TxnId> DirtyWriter(ItemId item) const;

  PredicatewiseTwoPhaseLocking inner_;
  std::map<ItemId, TxnId> last_writer_;   // most recent writer per item
  std::set<TxnId> incomplete_;            // writers still running
};

}  // namespace nse

#endif  // NSE_SCHEDULER_DR_SCHEDULER_H_
