// Delayed-read scheduling (§3.2): predicate-wise 2PL augmented with
// commit-gated reads — a transaction may not read an item whose most recent
// writer has not yet completed, even if the writer's lock was already
// released by the per-conjunct shrinking phase. The produced schedules are
// PWSR ∧ DR, the hypothesis of Theorem 2, without any restriction on
// transaction programs.
//
// The scheduler also watches its own stalls: every kWait feeds the waiting
// transaction's blocker set into an incremental waits-for graph
// (Pearce–Kelly, O(affected region) per new wait edge), so the policy can
// report — without any per-round DFS — when its commit gates and lock waits
// have closed a wait cycle (StalledCycle). Edges are as-of each waiter's
// most recent RequestAccess poll; see StalledCycle for the freshness
// contract.
//
// Concurrency: one policy mutex guards the dirty-writer table and the
// waits-for tracker; the inner PW-2PL synchronizes itself (striped locks)
// and is never called re-entrantly, so the lock order mu_ → stripe latch
// is acyclic. The wrapper never draws a trace sequence number of its own —
// every granted access returns the inner policy's grant verbatim, so the
// whole stack emits one monotone seq stream, and commit-gated conflicts
// (reader after writer-commit) are ordered by construction. kWait verdicts
// for the commit gate carry a ticket on *this* policy's hub; lock waits
// carry the inner hub's ticket; Poke() notifies both.

#ifndef NSE_SCHEDULER_DR_SCHEDULER_H_
#define NSE_SCHEDULER_DR_SCHEDULER_H_

#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/waits_for.h"

namespace nse {

/// PW-2PL + delayed reads.
class DelayedReadScheduler : public SchedulerPolicy {
 public:
  explicit DelayedReadScheduler(const IntegrityConstraint* ic) : inner_(ic) {}

  std::string name() const override { return "pw-2pl+dr"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// Wakes waiters on both the commit-gate hub and the inner lock hub.
  void Poke() override {
    SchedulerPolicy::Poke();
    inner_.Poke();
  }

  /// The wait cycle the scheduler's own waits have closed (txn ids,
  /// first == last), or nullopt while its waits-for graph is acyclic.
  /// Maintained online: each kWait costs O(affected region), the query
  /// O(1) — no per-stall-round DFS.
  ///
  /// Freshness contract: a transaction's edges reflect its blockers as of
  /// its most recent RequestAccess poll. A lock-wait edge can go stale
  /// between polls (PW-2PL releases locks mid-run via per-conjunct
  /// shrinking), so a reported cycle is a certain deadlock only when every
  /// participant was polled — and still waiting — in the current
  /// scheduling round (the simulator's stall-tick condition); a driver
  /// that polls blocked transactions each round gets at most a
  /// one-round-stale witness. Commit-gate edges never go stale: dirty
  /// writers are cleared only at Commit/Abort, which also retract their
  /// edges here. Read at quiescence or from the driver's detector.
  const std::optional<std::vector<TxnId>>& StalledCycle() const {
    return waits_.cycle();
  }

  /// Number of RequestAccess calls that returned kWait.
  uint64_t wait_events() const { return wait_events_; }

  /// The waits-for tracker (read-only; tests and diagnostics).
  const WaitsForTracker& waits() const { return waits_; }

  /// Outstanding lock grants of the inner PW-2PL — 0 at quiescence, or the
  /// policy leaked (the chaos harness's residual-state check).
  size_t held_locks() const { return inner_.held_locks(); }

  /// Writers still marked dirty (commit-gating reads) — 0 at quiescence.
  size_t dirty_writers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return incomplete_.size();
  }

 protected:
  void DoCommit(TxnId txn) override;
  void DoAbort(TxnId txn) override;

 private:
  /// The incomplete transaction that last wrote `item`, if any.
  /// Requires mu_.
  std::optional<TxnId> DirtyWriter(ItemId item) const;

  /// Blockers body without the mutex (RequestAccess calls it under mu_).
  std::vector<TxnId> BlockersLocked(TxnId txn, const TxnScript& script,
                                    size_t step) const;

  mutable std::mutex mu_;
  PredicatewiseTwoPhaseLocking inner_;
  std::map<ItemId, TxnId> last_writer_;   // most recent writer per item
  std::set<TxnId> incomplete_;            // writers still running
  WaitsForTracker waits_;                 // online stall / deadlock watch
  uint64_t wait_events_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_DR_SCHEDULER_H_
