#include "scheduler/snapshot_isolation.h"

#include <algorithm>

namespace nse {

SnapshotIsolationPolicy::SnapshotIsolationPolicy(size_t num_txns)
    : snapshot_(num_txns + 1), writes_(num_txns + 1) {}

uint64_t SnapshotIsolationPolicy::EnsureSnapshot(TxnId txn) {
  if (!snapshot_[txn].has_value()) snapshot_[txn] = commit_clock_;
  return *snapshot_[txn];
}

uint64_t SnapshotIsolationPolicy::OldestActiveSnapshot() const {
  uint64_t oldest = commit_clock_;
  for (const std::optional<uint64_t>& s : snapshot_) {
    if (s.has_value()) oldest = std::min(oldest, *s);
  }
  return oldest;
}

Result<AccessGrant> SnapshotIsolationPolicy::RequestAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  WaitTicket ticket = MakeTicket();  // before the decision: a wait may follow
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t snapshot = EnsureSnapshot(txn);
  const AccessStep& access = script.steps[step];
  if (access.action == OpAction::kRead) {
    // Own pending write first: a transaction sees its own updates.
    for (const PendingWrite& pending : writes_[txn]) {
      if (pending.item == access.item) {
        return GrantedRead(txn, pending.value);
      }
    }
    Result<VersionView> view = store_.ReadCommittedAt(access.item, snapshot);
    NSE_RETURN_IF_ERROR(view.status());
    return GrantedRead(view->writer, view->value);
  }
  auto claim = write_claims_.find(access.item);
  if (claim != write_claims_.end() && claim->second != txn) {
    // First-updater-wins, phase one: an active transaction already claims
    // the item. Wait it out — if it commits, our retry fails validation;
    // if it aborts, the claim is ours.
    ++write_write_waits_;
    return WaitOn(ticket);
  }
  Result<VersionView> newest = store_.Peek(access.item, UINT64_MAX);
  NSE_RETURN_IF_ERROR(newest.status());
  if (newest->writer_ts > snapshot) {
    // First-committer-wins: a concurrent transaction already committed a
    // version of this item past our snapshot. Restart with a fresh one.
    ++validation_aborts_;
    return AbortSelf();
  }
  AccessGrant grant = Granted();  // seq drawn under mu_: embeds grant order
  write_claims_[access.item] = txn;
  const int64_t value = static_cast<int64_t>(grant.trace_seq);
  for (PendingWrite& pending : writes_[txn]) {
    if (pending.item == access.item) {
      pending.value = value;  // overwrite of its own buffered write
      return grant;
    }
  }
  writes_[txn].push_back(PendingWrite{access.item, value});
  return grant;
}

void SnapshotIsolationPolicy::ReleaseWriteSet(TxnId txn) {
  for (const PendingWrite& pending : writes_[txn]) {
    auto claim = write_claims_.find(pending.item);
    if (claim != write_claims_.end() && claim->second == txn) {
      write_claims_.erase(claim);
    }
  }
  writes_[txn].clear();
  writes_[txn].shrink_to_fit();
}

void SnapshotIsolationPolicy::DoCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_[txn].has_value()) {
    if (!writes_[txn].empty()) {
      // One fresh commit stamp for the whole write set: the version chain
      // order *is* commit order, which is what makes the trace's per-item
      // write order a well-defined version order for the MVSR checker.
      const uint64_t commit_ts = ++commit_clock_;
      for (const PendingWrite& pending : writes_[txn]) {
        Status installed = store_.InstallVersion(
            pending.item, commit_ts, txn, pending.value, /*committed=*/true);
        NSE_CHECK_MSG(installed.ok(), "SI commit failed to install");
      }
    }
    ReleaseWriteSet(txn);
    snapshot_[txn].reset();
  }
  store_.TruncateBelow(OldestActiveSnapshot());
}

void SnapshotIsolationPolicy::DoAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!snapshot_[txn].has_value()) return;  // idempotent: already retracted
  ReleaseWriteSet(txn);
  snapshot_[txn].reset();
}

std::vector<TxnId> SnapshotIsolationPolicy::Blockers(TxnId txn,
                                                     const TxnScript& script,
                                                     size_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (step >= script.steps.size()) return {};
  const AccessStep& access = script.steps[step];
  if (access.action != OpAction::kWrite) return {};
  auto claim = write_claims_.find(access.item);
  if (claim != write_claims_.end() && claim->second != txn) {
    return {claim->second};
  }
  return {};
}

uint64_t SnapshotIsolationPolicy::validation_aborts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return validation_aborts_;
}

uint64_t SnapshotIsolationPolicy::write_write_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_write_waits_;
}

size_t SnapshotIsolationPolicy::active_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const std::optional<uint64_t>& s : snapshot_) {
    if (s.has_value()) ++active;
  }
  return active;
}

size_t SnapshotIsolationPolicy::pending_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const std::vector<PendingWrite>& set : writes_) total += set.size();
  return total;
}

size_t SnapshotIsolationPolicy::held_write_claims() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_claims_.size();
}

}  // namespace nse
