#include "scheduler/sgt_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace nse {

namespace {

std::vector<TxnId> AllTxnIds(size_t num_txns) {
  std::vector<TxnId> ids;
  ids.reserve(num_txns);
  for (TxnId id = 1; id <= num_txns; ++id) ids.push_back(id);
  return ids;
}

}  // namespace

SgtPolicy::SgtPolicy(size_t num_txns) : SgtPolicy(num_txns, Options()) {}

SgtPolicy::SgtPolicy(size_t num_txns, Options options)
    : options_(options),
      graph_(AllTxnIds(num_txns), CycleMode::kIncremental),
      committed_(num_txns + 1, false),
      trimmed_(num_txns + 1, false),
      consecutive_vetoes_(num_txns + 1, 0),
      steps_recorded_(num_txns + 1, 0),
      script_total_(num_txns + 1, 0),
      restart_count_(num_txns + 1, 0) {
  NSE_CHECK_MSG(options_.max_consecutive_vetoes >= 1,
                "SGT veto threshold must be at least 1");
}

std::vector<TxnId> SgtPolicy::VetoingPredecessors(TxnId txn,
                                                  const TxnScript& script,
                                                  size_t step) const {
  const AccessStep& access = script.steps[step];
  std::vector<TxnId> vetoing;
  index_.ForEachConflict(
      txn, access.action == OpAction::kWrite, access.item,
      [&](uint32_t from) {
        // Only a *new* edge can close a cycle: an edge already present
        // was admitted while the graph stayed acyclic.
        if (!graph_.HasEdge(from, txn) && graph_.WouldCloseCycle(from, txn)) {
          vetoing.push_back(from);
        }
      });
  return vetoing;
}

SgtPolicy::VetoProbe SgtPolicy::ProbeAccess(TxnId txn,
                                            const TxnScript& script,
                                            size_t step) const {
  // Decision-only variant of VetoingPredecessors: the remaining
  // (graph-search) probes are skipped once the decision is settled — this
  // is the per-access hot path on contended items.
  const AccessStep& access = script.steps[step];
  VetoProbe probe;
  index_.ForEachConflict(
      txn, access.action == OpAction::kWrite, access.item,
      [&](uint32_t from) {
        if (probe.vetoed && (probe.active_blocker || committed_[from])) {
          return;
        }
        if (!graph_.HasEdge(from, txn) && graph_.WouldCloseCycle(from, txn)) {
          probe.vetoed = true;
          if (!committed_[from]) probe.active_blocker = true;
        }
      });
  return probe;
}

Result<AccessGrant> SgtPolicy::RequestAccess(TxnId txn,
                                             const TxnScript& script,
                                             size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  WaitTicket ticket = MakeTicket();
  std::lock_guard<std::mutex> lock(mu_);
  VetoProbe probe = ProbeAccess(txn, script, step);
  if (probe.vetoed) {
    ++vetoes_;
    // Wait only while some vetoing edge's source is still running (its
    // abort would retract that edge directly); with committed-only
    // sources, restart at once — always safe, and independent of the
    // driver's stall patience. Recurring vetoes against active sources
    // restart at the threshold — the livelock guard. Either way the
    // restarted transaction re-enters *after* its former successors and
    // the cycle cannot re-form from the same conflicts.
    if (!probe.active_blocker ||
        ++consecutive_vetoes_[txn] >= options_.max_consecutive_vetoes) {
      consecutive_vetoes_[txn] = 0;
      ++restarts_requested_;
      return AbortSelf();
    }
    return WaitOn(ticket);
  }
  consecutive_vetoes_[txn] = 0;
  AdmitAccess(txn, script, step);
  return Granted();
}

void SgtPolicy::AdmitAccess(TxnId txn, const TxnScript& script, size_t step) {
  // Materialize the step's conflict edges and record the access. Every new
  // edge ends at `txn`, so a simple cycle could use at most one of them —
  // each was individually cleared by WouldCloseCycle, and the graph stays
  // acyclic.
  const AccessStep& access = script.steps[step];
  const bool is_write = access.action == OpAction::kWrite;
  index_.ForEachConflict(txn, is_write, access.item, [&](uint32_t from) {
    graph_.AddEdge(from, txn);
  });
  index_.Record(txn, is_write, access.item);
  ++steps_recorded_[txn];
  script_total_[txn] = script.steps.size();
  NSE_CHECK_MSG(!graph_.has_cycle(),
                "SGT admitted an access that closed a conflict cycle");
}

void SgtPolicy::TrimCommitted(std::vector<TxnId> seeds) {
  if (!options_.gc_committed) return;
  // A committed node issues no new accesses, so its in-edge set is final —
  // once empty, no future cycle can pass through it (a cycle would need a
  // path *into* the node) and its out-edges / item histories are dead
  // weight. Only a trim or an abort's retraction can empty a predecessor
  // set, so processing the seeds and, transitively, the committed
  // successors each trim frees reaches the same fixpoint as the old full
  // scan — in time proportional to the footprint actually reclaimed.
  while (!seeds.empty()) {
    TxnId id = seeds.back();
    seeds.pop_back();
    if (id == 0 || id >= committed_.size()) continue;
    if (!committed_[id] || trimmed_[id]) continue;
    if (!graph_.Predecessors(id).empty()) continue;
    std::vector<TxnId> successors = graph_.Successors(id);
    graph_.RemoveEdgesOf(id);
    index_.Erase(id);
    trimmed_[id] = true;
    ++gc_trimmed_;
    --live_committed_;
    for (TxnId succ : successors) {
      if (committed_[succ] && !trimmed_[succ]) seeds.push_back(succ);
    }
  }
}

void SgtPolicy::DoCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  // Committed edges stay: later accesses must still serialize after txn
  // (until the GC proves the node can never rejoin a cycle).
  committed_[txn] = true;
  consecutive_vetoes_[txn] = 0;
  ++live_committed_;
  max_live_committed_ = std::max(max_live_committed_, live_committed_);
  // The commit changed only this node's eligibility (predecessor sets are
  // untouched), so it is the whole worklist.
  TrimCommitted({txn});
}

void SgtPolicy::DoAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  // Retract the aborted transaction's whole footprint; it restarts from
  // scratch with a clean node. The retraction can strand committed
  // successors without predecessors, so they seed the trim.
  std::vector<TxnId> successors;
  if (options_.gc_committed) {
    for (TxnId succ : graph_.Successors(txn)) {
      if (committed_[succ] && !trimmed_[succ]) successors.push_back(succ);
    }
  }
  graph_.RemoveEdgesOf(txn);
  index_.Erase(txn);
  committed_[txn] = false;
  consecutive_vetoes_[txn] = 0;
  steps_recorded_[txn] = 0;
  ++restart_count_[txn];
  TrimCommitted(std::move(successors));
}

std::vector<TxnId> SgtPolicy::Blockers(TxnId txn, const TxnScript& script,
                                       size_t step) const {
  if (step >= script.steps.size()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  // A vetoed access waits on the still-running sources of its cycle-closing
  // edges (a committed source can never unblock it — that case escalates to
  // kAbortSelf via the veto threshold instead).
  std::vector<TxnId> blockers;
  for (TxnId from : VetoingPredecessors(txn, script, step)) {
    if (!committed_[from]) blockers.push_back(from);
  }
  return blockers;
}

}  // namespace nse
