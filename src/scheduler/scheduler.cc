#include "scheduler/scheduler.h"

#include <chrono>

namespace nse {

size_t TxnScript::LastStepTouching(const DataSet& d) const {
  size_t last = SIZE_MAX;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (d.Contains(steps[i].item)) last = i;
  }
  return last;
}

void WaitHub::Notify() {
  {
    // Bump under the mutex: a waiter that observed the old epoch and is
    // entering its wait holds the mutex, so the bump cannot slip between
    // its predicate check and the sleep.
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  cv_.notify_all();
}

bool WaitHub::AwaitChange(uint64_t seen, uint64_t timeout_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::microseconds(timeout_micros), [&] {
    return epoch_.load(std::memory_order_acquire) != seen;
  });
}

}  // namespace nse
