#include "scheduler/scheduler.h"

namespace nse {

size_t TxnScript::LastStepTouching(const DataSet& d) const {
  size_t last = SIZE_MAX;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (d.Contains(steps[i].item)) last = i;
  }
  return last;
}

}  // namespace nse
