// Priority-aware (timestamp-ordered) deadlock-free 2PL: the wound-wait and
// wait-die protocols layered on the shared LockManager. Every transaction
// draws a priority timestamp at its first access and *keeps it across
// restarts* — a restarted transaction ages rather than rejuvenates, which
// is what makes both protocols starvation-free: eventually it is the
// oldest transaction in the system and nothing can wound it (wound-wait)
// or force it to die (wait-die).
//
// Both protocols restrict which way a wait edge may point, so the
// waits-for graph is embedded in the (total) priority order and can never
// close a cycle — the drivers' deadlock-victim machinery provably never
// fires (aborts == 0 is the structural invariant the differential harness
// pins):
//
//   wound-wait  — an older requester *wounds* (aborts) every younger lock
//                 holder in its way and waits for the older ones: waits
//                 only ever point young → old.
//   wait-die    — a requester older than every conflicting holder waits;
//                 a requester younger than any holder *dies* (aborts and
//                 restarts with its original stamp): waits only ever point
//                 old → young.
//
// Locks are strict (held to completion), so both policies promise
// CSR ∧ strict — same class as strict 2PL, minus the deadlocks. Wounds
// travel through SchedulerPolicy::DrainCondemned: the driver rolls the
// victims back through the shared restart path right after the request
// that condemned them.
//
// Concurrency: one policy mutex serializes requests, retraction and stamp
// assignment. This keeps the protocol's decision basis — "the holders I
// saw are exactly the holders whose stamps I compared" — atomic; the
// deadlock-freedom argument relies on it.

#ifndef NSE_SCHEDULER_PRIORITY_LOCKING_H_
#define NSE_SCHEDULER_PRIORITY_LOCKING_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "scheduler/lock_manager.h"
#include "scheduler/scheduler.h"

namespace nse {

/// Common substrate of the two protocols: strict locking, priority stamps
/// that survive restarts, wound plumbing.
class PriorityLockingPolicy : public SchedulerPolicy {
 public:
  explicit PriorityLockingPolicy(size_t num_txns);

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// The priority stamp of txn (assigned at its first access, kept across
  /// restarts; smaller = older = higher priority), or nullopt before it
  /// ran.
  std::optional<uint64_t> priority(TxnId txn) const;

  /// Younger holders wounded (wound-wait; 0 under wait-die).
  uint64_t wounds_issued() const { return wounds_issued_; }

  /// Requester deaths (wait-die; 0 under wound-wait).
  uint64_t deaths() const { return deaths_; }

  /// Outstanding lock grants — 0 at quiescence, or the policy leaked
  /// (the chaos harness's residual-state check).
  size_t held_locks() const { return locks_.num_locks(); }

 protected:
  void DoCommit(TxnId txn) override;
  void DoAbort(TxnId txn) override;

  /// Protocol hook: the requester (with stamp `ts`) found `holders` in its
  /// way (all distinct from it). Returns kWait or kAbortSelf; may Condemn
  /// wounds. Runs under the policy mutex.
  virtual AccessVerdict OnConflict(TxnId txn, uint64_t ts,
                                   const std::vector<TxnId>& holders) = 0;

  /// Stamp of a transaction that has run at least once (CHECK otherwise).
  /// Requires the policy mutex.
  uint64_t StampOf(TxnId txn) const;

  uint64_t wounds_issued_ = 0;
  uint64_t deaths_ = 0;

 private:
  uint64_t EnsureStamp(TxnId txn);

  mutable std::mutex mu_;
  LockManager locks_;
  uint64_t clock_ = 0;
  std::vector<std::optional<uint64_t>> stamp_;  // by txn id
};

/// Wound-wait: older requesters wound younger holders, wait on older ones.
class WoundWaitPolicy : public PriorityLockingPolicy {
 public:
  explicit WoundWaitPolicy(size_t num_txns)
      : PriorityLockingPolicy(num_txns) {}
  std::string name() const override { return "wound-wait"; }

 protected:
  AccessVerdict OnConflict(TxnId txn, uint64_t ts,
                           const std::vector<TxnId>& holders) override;
};

/// Wait-die: requesters wait only on uniformly younger holders; otherwise
/// they die and retry with their original stamp.
class WaitDiePolicy : public PriorityLockingPolicy {
 public:
  explicit WaitDiePolicy(size_t num_txns) : PriorityLockingPolicy(num_txns) {}
  std::string name() const override { return "wait-die"; }

 protected:
  AccessVerdict OnConflict(TxnId txn, uint64_t ts,
                           const std::vector<TxnId>& holders) override;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_PRIORITY_LOCKING_H_
