#include "scheduler/timestamp_ordering.h"

#include <algorithm>

namespace nse {

TimestampOrderingPolicy::TimestampOrderingPolicy(size_t num_txns)
    : TimestampOrderingPolicy(num_txns, Options()) {}

TimestampOrderingPolicy::TimestampOrderingPolicy(size_t num_txns,
                                                 Options options)
    : options_(options), ts_(num_txns + 1), touched_(num_txns + 1) {}

uint64_t TimestampOrderingPolicy::EnsureTimestamp(TxnId txn) {
  if (!ts_[txn].has_value()) ts_[txn] = ++clock_;
  return *ts_[txn];
}

uint64_t TimestampOrderingPolicy::MaxOtherTs(const std::vector<Stamp>& stamps,
                                             TxnId self) {
  uint64_t max_ts = 0;
  for (const Stamp& s : stamps) {
    if (s.txn != self) max_ts = std::max(max_ts, s.ts);
  }
  return max_ts;
}

void TimestampOrderingPolicy::RecordStamp(std::vector<Stamp>& stamps,
                                          TxnId txn, uint64_t ts) {
  for (Stamp& s : stamps) {
    if (s.txn == txn) {
      s.ts = ts;  // same incarnation: ts is unchanged anyway
      return;
    }
  }
  stamps.push_back({txn, ts});
}

Result<AccessGrant> TimestampOrderingPolicy::RequestAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ts = EnsureTimestamp(txn);
  const AccessStep& access = script.steps[step];
  if (access.item >= items_.size()) items_.resize(access.item + 1);
  ItemState& item = items_[access.item];
  // Timestamps are unique per incarnation and a transaction's own accesses
  // never conflict with it, so all comparisons exclude `txn` itself.
  if (access.action == OpAction::kRead) {
    if (std::max(item.committed_wts, MaxOtherTs(item.writers, txn)) > ts) {
      // The item was already written by a younger transaction: this read
      // arrived too late for timestamp order. Restart with a fresh stamp.
      ++rejections_;
      return AbortSelf();
    }
    RecordStamp(item.readers, txn, ts);
    RecordTouched(txn, access.item);
    return Granted();
  }
  if (std::max(item.committed_rts, MaxOtherTs(item.readers, txn)) > ts) {
    // A younger transaction already read the item; writing now would hand
    // it a value from its past. Always fatal — Thomas cannot help.
    ++rejections_;
    return AbortSelf();
  }
  if (std::max(item.committed_wts, MaxOtherTs(item.writers, txn)) > ts) {
    if (options_.thomas_write_rule) {
      // Obsolete write: in timestamp order it would be immediately
      // overwritten by the newer write that already happened. Elide it —
      // nothing is recorded here or in the trace.
      ++skipped_writes_;
      return Skip();
    }
    ++rejections_;
    return AbortSelf();
  }
  RecordStamp(item.writers, txn, ts);
  RecordTouched(txn, access.item);
  return Granted();
}

void TimestampOrderingPolicy::RecordTouched(TxnId txn, ItemId item) {
  // Deduplicated: a transaction re-accessing an item (read then write, or
  // repeated script steps) must not grow its footprint list — commit/abort
  // walk this list, and RecordStamp keeps one stamp per txn anyway.
  std::vector<ItemId>& footprint = touched_[txn];
  if (std::find(footprint.begin(), footprint.end(), item) ==
      footprint.end()) {
    footprint.push_back(item);
  }
}

void TimestampOrderingPolicy::DoCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  // Committed stamps can never retract, so only their per-item maxima
  // matter for future checks: fold them into the committed scalars and
  // drop the per-entry bookkeeping — later-starting but older-stamped
  // stragglers are still rejected against the folded maxima, while each
  // item's stamp lists stay bounded by its *active* accessors.
  auto drop = [txn](const Stamp& s) { return s.txn == txn; };
  for (ItemId item_id : touched_[txn]) {
    ItemState& item = items_[item_id];
    for (const Stamp& s : item.readers) {
      if (s.txn == txn) item.committed_rts = std::max(item.committed_rts, s.ts);
    }
    for (const Stamp& s : item.writers) {
      if (s.txn == txn) item.committed_wts = std::max(item.committed_wts, s.ts);
    }
    item.readers.erase(
        std::remove_if(item.readers.begin(), item.readers.end(), drop),
        item.readers.end());
    item.writers.erase(
        std::remove_if(item.writers.begin(), item.writers.end(), drop),
        item.writers.end());
  }
  touched_[txn].clear();
  touched_[txn].shrink_to_fit();
}

void TimestampOrderingPolicy::DoAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  // The incarnation's footprint vanishes (its trace ops are removed by the
  // driver's restart path); the restart draws a fresh, larger stamp, so
  // the transaction eventually outranks whatever kept rejecting it. Only
  // the items this incarnation actually stamped are touched.
  auto drop = [txn](const Stamp& s) { return s.txn == txn; };
  for (ItemId item_id : touched_[txn]) {
    ItemState& item = items_[item_id];
    item.readers.erase(
        std::remove_if(item.readers.begin(), item.readers.end(), drop),
        item.readers.end());
    item.writers.erase(
        std::remove_if(item.writers.begin(), item.writers.end(), drop),
        item.writers.end());
  }
  touched_[txn].clear();
  touched_[txn].shrink_to_fit();
  ts_[txn].reset();
}

std::vector<TxnId> TimestampOrderingPolicy::Blockers(TxnId, const TxnScript&,
                                                     size_t) const {
  // TO never waits: every verdict is proceed, skip, or abort-restart.
  return {};
}

std::optional<uint64_t> TimestampOrderingPolicy::timestamp(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn < ts_.size() ? ts_[txn] : std::nullopt;
}

}  // namespace nse
