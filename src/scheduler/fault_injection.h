// Deterministic fault injection for the scheduler simulator. A FaultPlan is
// a pure function from (seed, txn, incarnation, step) to fault decisions —
// every query re-derives its answer from a dedicated Rng::Split stream, so
// the plan carries no mutable state, two runs over the same plan see the
// same faults, and the plan can be shared between the determinism-replay
// runs of the chaos harness.
//
// Four fault classes, each with its own decorrelated stream family:
//
//   * spontaneous client aborts — an incarnation picks (probabilistically)
//     one step at which the client gives up mid-script; the transaction
//     rolls back through the simulator's shared restart path and retries.
//     Capped per txn (max_client_aborts_per_txn) so injected aborts can
//     never starve a transaction forever: past the cap the client behaves.
//   * crash-at-op — a transaction may be condemned to crash the first time
//     it reaches a drawn step: its footprint is retracted exactly like an
//     abort, but it never restarts (terminal). This is what exercises the
//     OnAbort/Erase/RemoveEdgesOf retraction paths with no later
//     re-execution to paper over residual state.
//   * per-op latency spikes — before issuing a step the client stalls a
//     drawn number of ticks (think page fault, GC pause, slow network
//     round-trip), shifting every subsequent conflict window.
//   * arrival perturbation — each transaction's arrival tick is delayed by
//     a drawn offset, reshuffling the admission order.
//
// The simulator consults the plan through EngineConfig::faults (see engine/engine_config.h);
// policies never see the plan — faults arrive through the same OnAbort /
// restart machinery real aborts use, which is the point.

#ifndef NSE_SCHEDULER_FAULT_INJECTION_H_
#define NSE_SCHEDULER_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "txn/operation.h"

namespace nse {

/// Knobs of a deterministic fault plan. All probabilities are per-draw
/// Bernoulli parameters in [0, 1]; 0 disables the fault class.
struct FaultPlanConfig {
  uint64_t seed = 1;
  /// Per incarnation: probability that the client spontaneously aborts at
  /// one uniformly drawn step of its script.
  double client_abort_probability = 0.0;
  /// Injected client aborts stop firing for a transaction after this many
  /// have fired (the forward-progress cap; policy/deadlock restarts are
  /// not counted against it).
  uint64_t max_client_aborts_per_txn = 2;
  /// Per transaction: probability that it crashes (terminally) the first
  /// time it reaches a uniformly drawn step.
  double crash_probability = 0.0;
  /// Per (incarnation, step): probability of a latency spike before the op.
  double latency_spike_probability = 0.0;
  /// Spike length is drawn uniformly from [1, max_latency_spike_ticks].
  uint64_t max_latency_spike_ticks = 8;
  /// Arrival ticks are delayed by a uniform draw from [0, max_arrival_delay].
  uint64_t max_arrival_delay = 0;
};

/// A reproducible fault schedule (see file comment). Stateless and
/// const-queryable: the same (txn, incarnation, step) always gets the same
/// answer.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanConfig& config);

  const FaultPlanConfig& config() const { return config_; }

  /// The perturbed arrival tick for `txn` (>= the scripted arrival).
  uint64_t PerturbedArrival(TxnId txn, uint64_t scripted_arrival) const;

  /// The step at whose first attempt `txn` crashes terminally, or nullopt
  /// if this transaction never crashes. `script_len` 0 never crashes.
  std::optional<size_t> CrashStep(TxnId txn, size_t script_len) const;

  /// True iff incarnation `incarnation` of `txn` spontaneously aborts when
  /// it attempts `step`. Never fires once `aborts_so_far` has reached the
  /// per-txn cap.
  bool ClientAbortsAt(TxnId txn, uint64_t incarnation, size_t step,
                      size_t script_len, uint64_t aborts_so_far) const;

  /// Latency spike (in ticks, 0 = none) injected before incarnation
  /// `incarnation` of `txn` issues `step`.
  uint64_t LatencySpikeAt(TxnId txn, uint64_t incarnation, size_t step) const;

  /// True iff every fault class is disabled (the plan is a no-op).
  bool empty() const;

 private:
  FaultPlanConfig config_;
  Rng base_;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_FAULT_INJECTION_H_
