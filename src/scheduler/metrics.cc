#include "scheduler/metrics.h"

#include <algorithm>
#include <cstdio>

#include "analysis/analysis_context.h"
#include "common/string_util.h"
#include "scheduler/sim.h"

namespace nse {

TraceClassification ClassifyTrace(AnalysisContext& ctx) {
  TraceClassification out;
  // The context builds its conflict graphs with incremental (Pearce–Kelly)
  // detection, so a non-CSR verdict arrives with the cycle-closing edge's
  // trace position already recorded — no extra DFS here.
  const CsrReport& csr = ctx.csr_report();
  out.csr = csr.serializable;
  if (!out.csr) out.csr_cycle_op_pos = csr.cycle_op_pos;
  if (ctx.has_ic()) out.pwsr = ctx.pwsr_report().is_pwsr;
  out.delayed_read = ctx.delayed_read();
  out.strict = ctx.strict();
  return out;
}

std::string TraceClassification::ToString() const {
  auto yn = [](bool b) { return b ? "yes" : "no"; };
  std::string out =
      StrCat("CSR ", yn(csr), ", PWSR ",
             pwsr.has_value() ? yn(*pwsr) : "n/a", ", DR ",
             yn(delayed_read), ", strict ", yn(strict));
  if (csr_cycle_op_pos.has_value()) {
    out += StrCat(", cycle closed at op ", *csr_cycle_op_pos);
  }
  return out;
}

std::string SimSummary(const SimResult& result) {
  std::string out =
      StrCat("makespan ", result.makespan, ", completed ", result.completed,
             ", aborts ", result.aborts, ", restarts ", result.restarts,
             ", wounds ", result.wounds, ", vetoes ", result.vetoes,
             ", wait_ticks ", result.total_wait_ticks, ", throughput ",
             FormatDouble(result.throughput, 3));
  if (result.skipped_ops > 0) {
    out += StrCat(", skipped ", result.skipped_ops);
  }
  if (result.fault_aborts > 0) {
    out += StrCat(", fault_aborts ", result.fault_aborts);
  }
  if (result.crashes > 0) out += StrCat(", crashes ", result.crashes);
  if (result.shed > 0) out += StrCat(", shed ", result.shed);
  if (result.boosts > 0) out += StrCat(", boosts ", result.boosts);
  if (result.backoff_ticks > 0) {
    out += StrCat(", backoff_ticks ", result.backoff_ticks);
  }
  if (result.max_txn_restarts > 0) {
    out += StrCat(", max_txn_restarts ", result.max_txn_restarts);
  }
  return out;
}

void SeriesSummary::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double SeriesSummary::mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace nse
