#include "scheduler/pw_two_phase_locking.h"

namespace nse {

namespace {
LockMode ModeFor(OpAction action) {
  return action == OpAction::kRead ? LockMode::kShared : LockMode::kExclusive;
}
}  // namespace

Result<AccessGrant> PredicatewiseTwoPhaseLocking::RequestAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  WaitTicket ticket = MakeTicket();
  const AccessStep& access = script.steps[step];
  if (!locks_.TryAcquire(txn, access.item, ModeFor(access.action))) {
    return WaitOn(ticket);
  }
  // Seq while the lock is still held: the mid-call release below happens
  // strictly after, so conflicting grants on this conjunct keep seq order.
  AccessGrant grant = Granted();
  // If this is the last access of the transaction to the conjunct of the
  // touched item, the per-conjunct shrinking phase begins: release every
  // lock on that conjunct's data set and wake waiters.
  auto conjunct = ic_->ConjunctOf(access.item);
  if (conjunct.has_value()) {
    const DataSet& d = ic_->data_set(*conjunct);
    if (script.LastStepTouching(d) == step) {
      locks_.ReleaseAllIn(txn, d);
      Poke();
    }
  }
  return grant;
}

std::vector<TxnId> PredicatewiseTwoPhaseLocking::Blockers(
    TxnId txn, const TxnScript& script, size_t step) const {
  if (step >= script.steps.size()) return {};
  const AccessStep& access = script.steps[step];
  return locks_.Blockers(txn, access.item, ModeFor(access.action));
}

}  // namespace nse
