#include "scheduler/pw_two_phase_locking.h"

namespace nse {

namespace {
LockMode ModeFor(OpAction action) {
  return action == OpAction::kRead ? LockMode::kShared : LockMode::kExclusive;
}
}  // namespace

SchedulerDecision PredicatewiseTwoPhaseLocking::OnAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  const AccessStep& access = script.steps[step];
  return locks_.TryAcquire(txn, access.item, ModeFor(access.action))
             ? SchedulerDecision::kProceed
             : SchedulerDecision::kWait;
}

void PredicatewiseTwoPhaseLocking::AfterAccess(TxnId txn,
                                               const TxnScript& script,
                                               size_t step) {
  // If this was the last access of the transaction to the conjunct of the
  // touched item, the per-conjunct shrinking phase begins: release every
  // lock on that conjunct's data set.
  auto conjunct = ic_->ConjunctOf(script.steps[step].item);
  if (!conjunct.has_value()) return;  // unconstrained item: hold to the end
  const DataSet& d = ic_->data_set(*conjunct);
  if (script.LastStepTouching(d) == step) {
    locks_.ReleaseAllIn(txn, d);
  }
}

void PredicatewiseTwoPhaseLocking::OnComplete(TxnId txn) {
  locks_.ReleaseAll(txn);
}

void PredicatewiseTwoPhaseLocking::OnAbort(TxnId txn) {
  locks_.ReleaseAll(txn);
}

std::vector<TxnId> PredicatewiseTwoPhaseLocking::Blockers(
    TxnId txn, const TxnScript& script, size_t step) const {
  const AccessStep& access = script.steps[step];
  return locks_.Blockers(txn, access.item, ModeFor(access.action));
}

}  // namespace nse
