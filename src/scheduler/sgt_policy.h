// Serialization-graph-testing (SGT) scheduling: the optimistic,
// cycle-vetoing counterpart of the lock-based policies. The policy keeps an
// online incremental ConflictGraph (Pearce–Kelly mode) of every operation
// the simulator has executed — committed and active transactions alike —
// and, before admitting a step, derives the conflict edges that step would
// add (through the same ConflictAccessIndex rule the analysis sweep uses)
// and asks WouldCloseCycle. An access whose edges keep the graph acyclic
// proceeds immediately, without any locks; an access that would close a
// conflict cycle is vetoed.
//
// A vetoed transaction waits only while some vetoing edge has a still-
// running source (its abort would retract that edge directly); once every
// vetoing edge comes from a committed predecessor the policy answers
// kAbortSelf at once — those edges never retract, and although an
// *active* transaction elsewhere on the cycle path could in principle
// break the cycle by aborting, the probe does not trace the path:
// restarting is always safe, and the immediate escalation keeps the
// policy independent of the driver's stall patience. Recurring vetoes
// against active sources escalate the same way after
// max_consecutive_vetoes straight vetoes (the livelock guard). The
// driver then rolls the transaction back (RemoveEdgesOf /
// ConflictAccessIndex::Erase retract its footprint) and restarts it.
//
// Concurrency: one policy mutex latches the graph, the access index and
// the per-txn bookkeeping — every request, retraction and Blockers query
// runs under it, which also makes the trace linearization sound (the
// sequence number is drawn in the same critical section that admitted the
// access). With gc_committed on, the old commit-time fixpoint scan over
// all transactions is replaced by an incremental worklist trim seeded by
// exactly the events that can newly expose a committed source (the commit
// itself; an abort's retraction stranding committed successors), so each
// trim does work proportional to what it frees rather than to the
// population.
//
// Every committed trace is therefore acyclic — CSR *by construction*
// (Papadimitriou [13] via the paper's footnote-2 baseline) — even though
// no two-phase rule is ever enforced. This is the scheduler-side consumer
// of the incremental cycle detection built in PR 3 (ADR 0004).

#ifndef NSE_SCHEDULER_SGT_POLICY_H_
#define NSE_SCHEDULER_SGT_POLICY_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "analysis/conflict_graph.h"
#include "scheduler/scheduler.h"

namespace nse {

/// SGT policy over a fixed transaction population (ids 1..num_txns, the
/// drivers' convention).
class SgtPolicy : public SchedulerPolicy {
 public:
  struct Options {
    /// Straight vetoes of one step before the policy gives up waiting and
    /// requests abort-restart (the livelock guard). Must be >= 1.
    uint64_t max_consecutive_vetoes = 4;
    /// Classical SGT committed-node garbage collection: after every commit
    /// (and abort), committed transactions with no predecessors left in the
    /// live graph are trimmed (incrementally, via a worklist seeded by the
    /// event) — their edges and access-index footprint removed. A committed node can never gain a new in-edge (it issues no
    /// further accesses), so a committed *source* can never sit on a future
    /// cycle: trimming it, its out-edges and its item histories changes no
    /// veto decision, while keeping the live footprint bounded by the
    /// active window of an unbounded transaction stream instead of growing
    /// with everything ever committed. Off by default so quiescence tests
    /// can compare the live graph against the full committed trace's.
    bool gc_committed = false;
    /// Victim scoring rule for the victim-choice subclass (the base policy
    /// always restarts the requester and ignores this).
    enum class VictimCost {
      /// Fewest operations recorded since the last (re)start — least sunk
      /// work lost. Backward-looking: a freshly (re)started transaction
      /// always scores 0, so on an extreme hotspot the rule re-condemns
      /// whichever participant it knocked down last round, forever.
      kSunkCost,
      /// Estimated cost to get the victim re-executed to completion:
      /// remaining script steps plus victim_backoff per prior restart.
      /// Forward-looking: prefers victims that are quick to replay, and
      /// the backoff term steers subsequent wounds away from transactions
      /// the policy keeps knocking down.
      kPredictive,
    };
    VictimCost victim_cost = VictimCost::kSunkCost;
    /// Per-prior-restart penalty added to a candidate's kPredictive score.
    uint64_t victim_backoff = 4;
  };

  explicit SgtPolicy(size_t num_txns);
  SgtPolicy(size_t num_txns, Options options);

  std::string name() const override { return "sgt"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// Accesses vetoed because they would have closed a conflict cycle.
  uint64_t veto_events() const override { return vetoes_; }

  /// Vetoed transactions that escalated to kAbortSelf.
  uint64_t restarts_requested() const { return restarts_requested_; }

  /// Committed transactions trimmed by the GC (0 unless gc_committed).
  uint64_t gc_trimmed() const { return gc_trimmed_; }

  /// Committed transactions still carrying graph/index footprint (i.e. not
  /// yet trimmed). Without GC this is simply everything committed so far.
  size_t live_committed_nodes() const { return live_committed_; }

  /// High-water mark of live_committed_nodes() across the run — what the
  /// GC keeps bounded on a long transaction stream.
  size_t max_live_committed_nodes() const { return max_live_committed_; }

  /// The live serialization graph (read-only; tests assert it stays acyclic
  /// and, at quiescence, equals the committed schedule's conflict graph —
  /// minus the trimmed footprint when GC is on).
  const ConflictGraph& graph() const { return graph_; }

 protected:
  void DoCommit(TxnId txn) override;
  void DoAbort(TxnId txn) override;

  /// The conflict predecessors whose edges veto txn's access to `step`
  /// right now (empty when the access is admissible). Blockers-only path
  /// and the victim-choice subclass's veto enumeration. Requires mu_.
  std::vector<TxnId> VetoingPredecessors(TxnId txn, const TxnScript& script,
                                         size_t step) const;

  struct VetoProbe {
    bool vetoed = false;          ///< some predecessor vetoes the access
    bool active_blocker = false;  ///< ... and at least one is still running
  };

  /// Decides the access in one pass over the item history, short-circuiting
  /// once both answers are known (the request hot path). `active_blocker`
  /// is set when some vetoing edge's *source* is still running — a wait
  /// that source's abort would directly resolve. It inspects only the
  /// closing edges, not the full cycle path (see the file comment).
  VetoProbe ProbeAccess(TxnId txn, const TxnScript& script,
                        size_t step) const;

  /// Materializes an admitted access: inserts its conflict edges, records
  /// it in the item history, bumps the txn's work counter. The access must
  /// have been cleared (no vetoing predecessor). Requires mu_.
  void AdmitAccess(TxnId txn, const TxnScript& script, size_t step);

  /// Incremental committed-node trim (no-op unless GC is on): processes
  /// `seeds` — transactions that may have just become predecessor-free
  /// committed sources — trimming each eligible one and pushing its
  /// committed successors, which the trim may in turn have freed. Reaches
  /// the same fixpoint as a full scan because only a trim or an abort's
  /// retraction ever removes predecessors, and both seed the transactions
  /// they affected. Requires mu_.
  void TrimCommitted(std::vector<TxnId> seeds);

  /// Latches graph_, index_ and all per-txn bookkeeping. The victim-choice
  /// subclass's RequestAccess runs under the same latch.
  mutable std::mutex mu_;
  Options options_;
  ConflictGraph graph_;         // incremental mode, nodes 1..num_txns
  ConflictAccessIndex index_;   // per-item histories, keyed by raw txn id
  std::vector<bool> committed_;            // by txn id
  std::vector<bool> trimmed_;              // by txn id (GC only)
  std::vector<uint64_t> consecutive_vetoes_;  // by txn id
  std::vector<uint64_t> steps_recorded_;   // by txn id: work since (re)start
  std::vector<uint64_t> script_total_;     // by txn id: script length, set on
                                           // first admitted access
  std::vector<uint64_t> restart_count_;    // by txn id: rollbacks so far
  uint64_t vetoes_ = 0;
  uint64_t restarts_requested_ = 0;
  uint64_t gc_trimmed_ = 0;
  size_t live_committed_ = 0;
  size_t max_live_committed_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_SGT_POLICY_H_
