#include "scheduler/two_phase_locking.h"

namespace nse {

namespace {
LockMode ModeFor(OpAction action) {
  return action == OpAction::kRead ? LockMode::kShared : LockMode::kExclusive;
}
}  // namespace

SchedulerDecision StrictTwoPhaseLocking::OnAccess(TxnId txn,
                                                  const TxnScript& script,
                                                  size_t step) {
  const AccessStep& access = script.steps[step];
  return locks_.TryAcquire(txn, access.item, ModeFor(access.action))
             ? SchedulerDecision::kProceed
             : SchedulerDecision::kWait;
}

void StrictTwoPhaseLocking::AfterAccess(TxnId, const TxnScript&, size_t) {}

void StrictTwoPhaseLocking::OnComplete(TxnId txn) { locks_.ReleaseAll(txn); }

void StrictTwoPhaseLocking::OnAbort(TxnId txn) { locks_.ReleaseAll(txn); }

std::vector<TxnId> StrictTwoPhaseLocking::Blockers(TxnId txn,
                                                   const TxnScript& script,
                                                   size_t step) const {
  const AccessStep& access = script.steps[step];
  return locks_.Blockers(txn, access.item, ModeFor(access.action));
}

}  // namespace nse
