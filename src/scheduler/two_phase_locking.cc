#include "scheduler/two_phase_locking.h"

namespace nse {

namespace {
LockMode ModeFor(OpAction action) {
  return action == OpAction::kRead ? LockMode::kShared : LockMode::kExclusive;
}
}  // namespace

Result<AccessGrant> StrictTwoPhaseLocking::RequestAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  // Epoch before the attempt: a release between the failed TryAcquire and
  // the caller's sleep bumps past this snapshot and wakes it immediately.
  WaitTicket ticket = MakeTicket();
  const AccessStep& access = script.steps[step];
  if (locks_.TryAcquire(txn, access.item, ModeFor(access.action))) {
    // Seq under the granted lock: conflicting operations on this item
    // serialize through the lock, and our release happens strictly later,
    // so seq order embeds the conflict order.
    return Granted();
  }
  return WaitOn(ticket);
}

std::vector<TxnId> StrictTwoPhaseLocking::Blockers(TxnId txn,
                                                   const TxnScript& script,
                                                   size_t step) const {
  if (step >= script.steps.size()) return {};
  const AccessStep& access = script.steps[step];
  return locks_.Blockers(txn, access.item, ModeFor(access.action));
}

}  // namespace nse
