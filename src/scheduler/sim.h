// Tick-based concurrency simulator. Each tick, every active transaction
// attempts its next scripted operation; the policy grants or blocks it.
// Deadlocks are detected on the waits-for graph and resolved by aborting the
// largest-id transaction in the cycle, which restarts from scratch.
//
// The simulator reports both performance metrics (the currency of the
// paper's motivation: waits, makespan, throughput) and the committed
// operation trace as a Schedule, so the analysis checkers can verify that a
// policy's output lies in the class it promises (CSR / PWSR / DR).
// Trace values are structural placeholders — class membership depends only
// on actions, items, and order.

#ifndef NSE_SCHEDULER_SIM_H_
#define NSE_SCHEDULER_SIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "scheduler/scheduler.h"
#include "txn/schedule.h"

namespace nse {

/// Simulation limits and switches.
struct SimConfig {
  uint64_t max_ticks = 1'000'000;  ///< hard stop (error if exceeded)
  /// Consecutive fully-stalled ticks (blocked transactions, no waits-for
  /// cycle) tolerated before the run is declared wedged. Optimistic
  /// policies resolve such stalls themselves — an SGT veto escalates to
  /// kAbortRestart after its veto threshold — so the simulator must not
  /// error on the first cycle-free stall; a genuinely stuck policy still
  /// fails, just `stall_patience` ticks later.
  uint64_t stall_patience = 64;
};

/// Aggregate outcome of one simulation run.
struct SimResult {
  uint64_t makespan = 0;           ///< tick after the last completion
  uint64_t completed = 0;          ///< transactions committed
  uint64_t aborts = 0;             ///< deadlock victims (each restarts)
  uint64_t restarts = 0;           ///< policy-requested kAbortRestart events
  uint64_t wounds = 0;             ///< policy-aborted *other* transactions
                                   ///< (DrainWounds victims; each restarts)
  uint64_t vetoes = 0;             ///< policy veto_events() (SGT cycle vetoes)
  uint64_t skipped_ops = 0;        ///< kSkip verdicts (Thomas-rule writes
                                   ///< elided from the committed trace)
  uint64_t total_wait_ticks = 0;   ///< ticks spent blocked, all txns
  uint64_t total_ops = 0;          ///< committed operations
  double avg_response_ticks = 0;   ///< mean completion − arrival
  double throughput = 0;           ///< completed / makespan
  Schedule schedule;               ///< committed trace (structural values)
};

/// Runs `scripts` under `policy`. Transaction ids are 1-based script
/// indices. Fails if the run exceeds `config.max_ticks` or stalls without a
/// detectable deadlock (a policy bug).
Result<SimResult> RunSimulation(SchedulerPolicy& policy,
                                const std::vector<TxnScript>& scripts,
                                const SimConfig& config = SimConfig());

}  // namespace nse

#endif  // NSE_SCHEDULER_SIM_H_
