// Tick-based concurrency simulator. Each tick, every active transaction
// attempts its next scripted operation; the policy grants or blocks it.
// Deadlocks are detected on the waits-for graph and resolved by aborting the
// largest-id transaction in the cycle, which restarts from scratch.
//
// The simulator reports both performance metrics (the currency of the
// paper's motivation: waits, makespan, throughput) and the committed
// operation trace as a Schedule, so the analysis checkers can verify that a
// policy's output lies in the class it promises (CSR / PWSR / DR).
// Trace values are structural placeholders — class membership depends only
// on actions, items, and order.
//
// Adversity is first-class: an optional FaultPlan (fault_injection.h)
// injects spontaneous client aborts, terminal crash-at-op, latency spikes
// and arrival perturbation — all delivered through the same OnAbort /
// restart machinery real aborts use — and a RestartPolicy governs how
// victims re-enter: backoff shape (immediate / fixed / linear /
// capped-exponential, with deterministic jitter), a starvation watchdog
// that boosts a transaction past its restart cap instead of letting it
// livelock, and an admission gate (max live transactions; overflow queued
// or shed) for graceful degradation under overload.

#ifndef NSE_SCHEDULER_SIM_H_
#define NSE_SCHEDULER_SIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "scheduler/scheduler.h"
#include "txn/schedule.h"

namespace nse {

class FaultPlan;

/// Governs how aborted transactions re-enter the system and how many
/// transactions may be live at once. The defaults reproduce the historical
/// behavior bit-for-bit: linear backoff min(2 + 4*n, 128), no jitter, no
/// watchdog, no admission gate.
struct RestartPolicy {
  /// Backoff shape as a function of the transaction's restart count n
  /// (n >= 1 at the first computation), before jitter and capping.
  enum class Backoff {
    kImmediate,    ///< re-enter next tick
    kFixed,        ///< base ticks, every time
    kLinear,       ///< base + step * n   (legacy default)
    kExponential,  ///< base << (n - 1), capped — the thundering-herd shape
  };
  Backoff backoff = Backoff::kLinear;
  uint64_t base = 2;    ///< first-restart delay (ticks)
  uint64_t step = 4;    ///< linear slope (kLinear only)
  uint64_t cap = 128;   ///< upper bound on the computed delay
  /// Deterministic jitter: a pure-function draw from [0, jitter] (keyed on
  /// jitter_seed, txn, restart count) added to the delay, de-synchronizing
  /// victims of the same conflict without breaking reproducibility.
  uint64_t jitter = 0;
  uint64_t jitter_seed = 1;
  /// Starvation watchdog: once a transaction's restart count exceeds this,
  /// it is *boosted* rather than left to lose every future race.
  /// Escalations are strictly serialized: the lowest-id boosted unfinished
  /// transaction holds the privilege — zero backoff and scanned ahead of
  /// everyone else each tick — while any other boosted transaction is
  /// *parked* (idle, holding no footprint) until the privileged one
  /// finishes. Giving several chronic restarters free restarts at once
  /// would just trade livelock-by-backoff for livelock-by-collision (two
  /// free restarters can re-abort each other forever). 0 disables.
  uint64_t max_restarts_before_boost = 0;
  /// Admission gate: max transactions live (admitted, not yet done) at
  /// once. 0 = unlimited. Arrivals beyond the gate are queued (admitted in
  /// (arrival, id) order as slots free) or shed (dropped, counted, never
  /// run) per `overflow`.
  size_t max_live_txns = 0;
  enum class Overflow { kQueue, kShed };
  Overflow overflow = Overflow::kQueue;
};

/// Simulation limits and switches.
struct SimConfig {
  uint64_t max_ticks = 1'000'000;  ///< hard stop (error if exceeded)
  /// Consecutive fully-stalled ticks (blocked transactions, no waits-for
  /// cycle) tolerated before the run is declared wedged. Optimistic
  /// policies resolve such stalls themselves — an SGT veto escalates to
  /// kAbortRestart after its veto threshold — so the simulator must not
  /// error on the first cycle-free stall; a genuinely stuck policy still
  /// fails, just `stall_patience` ticks later. Ticks on which any
  /// transaction sits in deliberate restart backoff (or a latency spike)
  /// are *pauses, not stalls*: they reset the streak instead of counting
  /// toward it, so a long exponential backoff is never misdiagnosed as a
  /// wedged policy — once nothing is backing off, a genuine wedge still
  /// accumulates its consecutive ticks and fails.
  uint64_t stall_patience = 64;
  /// Restart governance: backoff, starvation watchdog, admission gate.
  RestartPolicy restart;
  /// Optional fault injection (not owned; nullptr = no faults).
  const FaultPlan* faults = nullptr;
};

/// Aggregate outcome of one simulation run.
struct SimResult {
  uint64_t makespan = 0;           ///< tick after the last completion
  uint64_t completed = 0;          ///< transactions committed
  uint64_t aborts = 0;             ///< deadlock victims (each restarts)
  uint64_t restarts = 0;           ///< policy-requested kAbortRestart events
  uint64_t wounds = 0;             ///< policy-aborted *other* transactions
                                   ///< (DrainWounds victims; each restarts)
  uint64_t vetoes = 0;             ///< policy veto_events() (SGT cycle vetoes)
  uint64_t skipped_ops = 0;        ///< kSkip verdicts (Thomas-rule writes
                                   ///< elided from the committed trace)
  uint64_t fault_aborts = 0;       ///< injected spontaneous client aborts
  uint64_t crashes = 0;            ///< injected terminal crash-at-op faults
  uint64_t shed = 0;               ///< arrivals dropped by the admission gate
  uint64_t boosts = 0;             ///< starvation-watchdog escalations
  uint64_t backoff_ticks = 0;      ///< total deliberate restart-delay ticks
  uint64_t latency_spike_ticks = 0;  ///< total injected latency-spike ticks
  uint64_t max_txn_restarts = 0;   ///< max restarts of any single txn
  uint64_t total_wait_ticks = 0;   ///< ticks spent blocked, all txns
  uint64_t total_ops = 0;          ///< committed operations
  double avg_response_ticks = 0;   ///< mean completion − arrival (committed)
  double throughput = 0;           ///< completed / makespan
  Schedule schedule;               ///< committed trace (structural values)
};

/// Runs `scripts` under `policy`. Transaction ids are 1-based script
/// indices. Fails if the run exceeds `config.max_ticks` or stalls without a
/// detectable deadlock (a policy bug). With faults injected, crashed and
/// shed transactions never commit — everything else must (the chaos
/// harness's forward-progress contract); their operations never appear in
/// the committed trace.
Result<SimResult> RunSimulation(SchedulerPolicy& policy,
                                const std::vector<TxnScript>& scripts,
                                const SimConfig& config = SimConfig());

}  // namespace nse

#endif  // NSE_SCHEDULER_SIM_H_
