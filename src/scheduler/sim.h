// Tick-based concurrency simulator. Each tick, every active transaction
// attempts its next scripted operation; the policy grants or blocks it.
// Deadlocks are detected on the waits-for graph and resolved by aborting the
// largest-id transaction in the cycle, which restarts from scratch.
//
// The simulator reports both performance metrics (the currency of the
// paper's motivation: waits, makespan, throughput) and the committed
// operation trace as a Schedule, so the analysis checkers can verify that a
// policy's output lies in the class it promises (CSR / PWSR / DR).
// Trace values are structural placeholders — class membership depends only
// on actions, items, and order.
//
// Adversity is first-class: an optional FaultPlan (fault_injection.h)
// injects spontaneous client aborts, terminal crash-at-op, latency spikes
// and arrival perturbation — all delivered through the same Abort /
// restart machinery real aborts use — and a RestartPolicy governs how
// victims re-enter: backoff shape (immediate / fixed / linear /
// capped-exponential, with deterministic jitter), a starvation watchdog
// that boosts a transaction past its restart cap instead of letting it
// livelock, and an admission gate (max live transactions; overflow queued
// or shed) for graceful degradation under overload.

#ifndef NSE_SCHEDULER_SIM_H_
#define NSE_SCHEDULER_SIM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/engine_config.h"
#include "scheduler/scheduler.h"
#include "txn/schedule.h"

namespace nse {

/// Aggregate outcome of one simulation run.
struct SimResult {
  uint64_t makespan = 0;           ///< tick after the last completion
  uint64_t completed = 0;          ///< transactions committed
  uint64_t aborts = 0;             ///< deadlock victims (each restarts)
  uint64_t restarts = 0;           ///< policy-requested kAbortSelf events
  uint64_t wounds = 0;             ///< policy-aborted *other* transactions
                                   ///< (DrainCondemned victims; each
                                   ///< restarts)
  uint64_t vetoes = 0;             ///< policy veto_events() (SGT cycle vetoes)
  uint64_t skipped_ops = 0;        ///< kSkip verdicts (Thomas-rule writes
                                   ///< elided from the committed trace)
  uint64_t committed_skipped_ops = 0;  ///< kSkip verdicts of incarnations
                                       ///< that went on to commit; pins
                                       ///< total_ops + committed_skipped_ops
                                       ///< == sum of committed script lengths
  uint64_t fault_aborts = 0;       ///< injected spontaneous client aborts
  uint64_t crashes = 0;            ///< injected terminal crash-at-op faults
  uint64_t shed = 0;               ///< arrivals dropped by the admission gate
  uint64_t boosts = 0;             ///< starvation-watchdog escalations
  uint64_t backoff_ticks = 0;      ///< total deliberate restart-delay ticks
  uint64_t latency_spike_ticks = 0;  ///< total injected latency-spike ticks
  uint64_t max_txn_restarts = 0;   ///< max restarts of any single txn
  uint64_t total_wait_ticks = 0;   ///< ticks spent blocked, all txns
  uint64_t total_ops = 0;          ///< committed operations
  double avg_response_ticks = 0;   ///< mean completion − arrival (committed)
  double throughput = 0;           ///< completed / makespan
  Schedule schedule;               ///< committed trace (structural values)
  /// Per-position version annotation, parallel to schedule.ops(): for a
  /// read granted with an AccessGrant::read_view (multiversion policies),
  /// the transaction whose write produced the observed version (0 = the
  /// initial state). Absent for writes and single-version reads. This is
  /// what gives a multiversion trace its well-defined reads-from for the
  /// MVSR checker.
  std::vector<std::optional<TxnId>> read_sources;
  /// Restarts (of any kind) per transaction, index txn-1. Read-only
  /// transactions under MVTO/SI must show 0 here.
  std::vector<uint64_t> txn_restarts;
};

/// Runs `scripts` under `policy`. Transaction ids are 1-based script
/// indices. Fails on an invalid `config` (EngineConfig::Validate), if the
/// run exceeds `config.max_ticks`, or if it stalls without a detectable
/// deadlock (a policy bug). Engine-only knobs (threads, wait timeouts,
/// latency) are ignored — the simulator is the deterministic single-
/// threaded adapter of the same policy contract the engine drives for
/// real. With faults injected, crashed and shed transactions never
/// commit — everything else must (the chaos harness's forward-progress
/// contract); their operations never appear in the committed trace.
Result<SimResult> RunSimulation(SchedulerPolicy& policy,
                                const std::vector<TxnScript>& scripts,
                                const EngineConfig& config = EngineConfig());

}  // namespace nse

#endif  // NSE_SCHEDULER_SIM_H_
