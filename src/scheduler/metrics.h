// Aggregation and table rendering for benchmark output, plus the
// class-membership profile of a committed trace (what a scheduler policy
// actually produced, verified against what it promises).

#ifndef NSE_SCHEDULER_METRICS_H_
#define NSE_SCHEDULER_METRICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nse {

class AnalysisContext;
struct SimResult;

/// Schedule-class membership of one committed trace, computed from a single
/// shared AnalysisContext (each underlying artifact is built once, however
/// many classes are probed).
struct TraceClassification {
  bool csr = false;                 ///< conflict serializable
  std::optional<bool> pwsr;         ///< Definition 2; nullopt without an IC
  bool delayed_read = false;        ///< Definition 5
  bool strict = false;              ///< strict ⊂ ACA ⊆ DR
  /// When not CSR: the trace position whose operation closed the conflict
  /// cycle (recorded by the incremental detection during the graph build).
  std::optional<size_t> csr_cycle_op_pos;

  /// Renders e.g. "CSR yes, PWSR yes, DR yes, strict no" (plus
  /// ", cycle closed at op N" for non-CSR traces with a recorded position).
  std::string ToString() const;
};

/// Classifies ctx's schedule. PWSR is probed only when the context carries
/// an integrity constraint.
TraceClassification ClassifyTrace(AnalysisContext& ctx);

/// One-line performance summary of a simulation run, e.g.
/// "makespan 42, completed 8, aborts 1, restarts 2, wounds 1, vetoes 5,
/// throughput 0.19" — restart, wound and veto counts included so
/// optimistic / priority policies (SGT, wound-wait, TO) render their
/// abort economics next to the lock waits; a ", skipped N" suffix appears
/// when Thomas-rule writes were elided. Fault/robustness counters
/// (fault_aborts, crashes, shed, boosts, backoff_ticks, max_txn_restarts)
/// are appended only when non-zero, so fault-free summaries are unchanged.
std::string SimSummary(const SimResult& result);

/// Streaming summary of a numeric series.
class SeriesSummary {
 public:
  /// Adds an observation.
  void Add(double x);

  /// Number of observations.
  uint64_t count() const { return count_; }
  /// Arithmetic mean (0 when empty).
  double mean() const;
  /// Minimum (0 when empty).
  double min() const { return count_ == 0 ? 0 : min_; }
  /// Maximum (0 when empty).
  double max() const { return count_ == 0 ? 0 : max_; }
  /// Sum of observations.
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-width text tables, used by the bench binaries to print the rows a
/// paper table would contain.
class TablePrinter {
 public:
  /// Sets the column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row (cells are pre-rendered strings).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a double with `digits` fractional digits.
std::string FormatDouble(double x, int digits = 2);

}  // namespace nse

#endif  // NSE_SCHEDULER_METRICS_H_
