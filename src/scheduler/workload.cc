#include "scheduler/workload.h"

#include <algorithm>

#include "analysis/fixed_structure.h"
#include "common/string_util.h"

namespace nse {

std::vector<const TransactionProgram*> Workload::ProgramPtrs() const {
  std::vector<const TransactionProgram*> out;
  out.reserve(programs.size());
  for (const auto& program : programs) out.push_back(&program);
  return out;
}

namespace {

/// Builds the generator's database: items p{e}_x{k}.
Result<Database> MakeCatalog(size_t partitions, size_t items_per_partition,
                             int64_t lo, int64_t hi) {
  Database db;
  for (size_t e = 0; e < partitions; ++e) {
    for (size_t k = 0; k < items_per_partition; ++k) {
      NSE_ASSIGN_OR_RETURN(
          ItemId ignored,
          db.AddItem(StrCat("p", e, "_x", k), Domain::IntRange(lo, hi)));
      (void)ignored;
    }
  }
  return db;
}

ItemId ItemOf(const Database& db, size_t partition, size_t k) {
  return db.MustFind(StrCat("p", partition, "_x", k));
}

/// Conjunct formula for one partition: all items equal (or a trivially true
/// bound for singleton partitions). Mentions every partition item, so the
/// conjunct's data set is exactly the partition.
Formula PartitionInvariant(const Database& db, size_t partition,
                           size_t items_per_partition, int64_t lo) {
  if (items_per_partition == 1) {
    return Ge(Var(ItemOf(db, partition, 0)), Const(Value(lo)));
  }
  std::vector<Formula> eqs;
  for (size_t k = 0; k + 1 < items_per_partition; ++k) {
    eqs.push_back(Eq(Var(ItemOf(db, partition, k)),
                     Var(ItemOf(db, partition, k + 1))));
  }
  return And(std::move(eqs));
}

/// One partition update: every item of `target` is assigned
/// clamp(pivot_target + delta). Pivot is written last so that each
/// assignment evaluates the expression against the pivot's *original*
/// (cached) value — this is what preserves the all-equal invariant.
StmtBlock BumpPartition(const Database& db, size_t target,
                        size_t items_per_partition, Term delta, int64_t lo,
                        int64_t hi) {
  Term pivot = Var(ItemOf(db, target, 0));
  Term expr = Min(Max(Add(pivot, std::move(delta)), Const(Value(lo))),
                  Const(Value(hi)));
  StmtBlock block;
  for (size_t k = 1; k < items_per_partition; ++k) {
    block.push_back(AssignStmt(ItemOf(db, target, k), expr));
  }
  block.push_back(AssignStmt(ItemOf(db, target, 0), expr));
  return block;
}

struct CoreConfig {
  size_t num_partitions;
  size_t items_per_partition;
  std::vector<size_t> partitions_per_txn;  // one entry per transaction
  double cross_read_probability;
  bool acyclic_cross_reads;
  double branch_probability;
  double hotspot_probability = 0.0;
  int64_t domain_lo;
  int64_t domain_hi;
  uint64_t seed;
  uint64_t arrival_spread;
};

Result<Workload> GenerateCore(const CoreConfig& config) {
  if (config.num_partitions == 0 || config.items_per_partition == 0) {
    return Status::InvalidArgument("need at least one partition and item");
  }
  for (size_t m : config.partitions_per_txn) {
    if (m == 0 || m > config.num_partitions) {
      return Status::InvalidArgument(
          "partitions_per_txn entries must be in [1, num_partitions]");
    }
  }
  Workload workload;
  NSE_ASSIGN_OR_RETURN(
      workload.db,
      MakeCatalog(config.num_partitions, config.items_per_partition,
                  config.domain_lo, config.domain_hi));

  std::vector<Formula> conjuncts;
  for (size_t e = 0; e < config.num_partitions; ++e) {
    conjuncts.push_back(PartitionInvariant(
        workload.db, e, config.items_per_partition, config.domain_lo));
  }
  NSE_ASSIGN_OR_RETURN(
      IntegrityConstraint ic,
      IntegrityConstraint::FromConjuncts(workload.db, std::move(conjuncts)));
  workload.ic = std::move(ic);

  Rng rng(config.seed);
  for (size_t t = 0; t < config.partitions_per_txn.size(); ++t) {
    size_t visits = config.partitions_per_txn[t];
    // Distinct random partitions; ascending order keeps cross reads (which
    // only look at lower-numbered partitions) meaningful under the acyclic
    // regime.
    std::vector<size_t> all(config.num_partitions);
    for (size_t e = 0; e < all.size(); ++e) all[e] = e;
    rng.Shuffle(all);
    std::vector<size_t> visit(all.begin(),
                              all.begin() + static_cast<long>(visits));
    // Hot-spot contention: redirect one visit to partition 0. The rng is
    // only consulted when the knob is on, so default-configured workloads
    // reproduce byte-identically across this change.
    if (config.hotspot_probability > 0 &&
        rng.NextBool(config.hotspot_probability) &&
        std::find(visit.begin(), visit.end(), size_t{0}) == visit.end()) {
      visit[rng.NextBelow(visit.size())] = 0;
    }
    if (config.acyclic_cross_reads) std::sort(visit.begin(), visit.end());

    StmtBlock body;
    for (size_t v = 0; v < visit.size(); ++v) {
      size_t target = visit[v];
      // Delta: a small constant, or a cross read of another partition's
      // pivot. DAG(S, IC) has an edge (C_f, C_e) whenever one transaction
      // reads d_f and writes d_e, so for the acyclic regime a transaction
      // must not read *any* partition it writes — not even the target's own
      // pivot — and may read only partitions strictly below its first
      // written partition (all edges then point upward).
      Term delta = Const(Value(rng.NextInt(-2, 2)));
      std::optional<size_t> source;
      if (rng.NextBool(config.cross_read_probability)) {
        std::vector<size_t> candidates;
        for (size_t f = 0; f < config.num_partitions; ++f) {
          if (f == target) continue;
          if (config.acyclic_cross_reads && f >= visit[0]) continue;
          candidates.push_back(f);
        }
        if (!candidates.empty()) {
          source = candidates[rng.NextBelow(candidates.size())];
          delta = Var(ItemOf(workload.db, *source, 0));
        }
      }
      StmtBlock bump;
      if (config.acyclic_cross_reads) {
        // Constant-valued rewrite of the whole partition (no pivot read):
        // every item of the partition gets clamp(delta + c), which preserves
        // the all-equal invariant without touching the partition's items.
        Term expr = Min(Max(Add(std::move(delta),
                                Const(Value(rng.NextInt(-2, 2)))),
                            Const(Value(config.domain_lo))),
                        Const(Value(config.domain_hi)));
        for (size_t k = 0; k < config.items_per_partition; ++k) {
          bump.push_back(
              AssignStmt(ItemOf(workload.db, target, k), expr));
        }
      } else {
        bump = BumpPartition(workload.db, target, config.items_per_partition,
                             std::move(delta), config.domain_lo,
                             config.domain_hi);
      }
      // A guard reading the target partition would re-introduce a
      // read-own-partition edge, so under the acyclic regime branch only
      // when a lower-partition source exists.
      bool can_branch = !config.acyclic_cross_reads || source.has_value();
      if (can_branch && rng.NextBool(config.branch_probability)) {
        // Data-dependent guard: the update happens only in some states, so
        // the program no longer has fixed structure (Definition 3 fails).
        size_t guard_partition = source.value_or(target);
        Formula cond =
            Gt(Var(ItemOf(workload.db, guard_partition, 0)), Const(Value(0)));
        body.push_back(IfStmt(std::move(cond), std::move(bump)));
      } else {
        body.insert(body.end(), bump.begin(), bump.end());
      }
    }
    workload.programs.emplace_back(StrCat("TP", t + 1), std::move(body));
  }

  // Scripts: the access structure of each program (representative path for
  // branching programs — scripts feed the performance simulator, which runs
  // the fixed-structure presets).
  for (const TransactionProgram& program : workload.programs) {
    StructureAnalysis analysis = AnalyzeStructure(workload.db, program);
    TxnScript script;
    for (const OpStruct& op : analysis.signature) {
      script.steps.push_back(AccessStep{op.action, op.entity});
    }
    script.arrival_tick =
        config.arrival_spread == 0 ? 0 : rng.NextBelow(config.arrival_spread + 1);
    workload.scripts.push_back(std::move(script));
  }
  return workload;
}

}  // namespace

Result<Workload> MakePartitionedWorkload(
    const PartitionedWorkloadConfig& config) {
  CoreConfig core;
  core.num_partitions = config.num_partitions;
  core.items_per_partition = config.items_per_partition;
  core.partitions_per_txn.assign(config.num_txns, config.partitions_per_txn);
  core.cross_read_probability = config.cross_read_probability;
  core.acyclic_cross_reads = config.acyclic_cross_reads;
  core.branch_probability = config.branch_probability;
  core.hotspot_probability = config.hotspot_probability;
  core.domain_lo = config.domain_lo;
  core.domain_hi = config.domain_hi;
  core.seed = config.seed;
  core.arrival_spread = config.arrival_spread;
  return GenerateCore(core);
}

Result<Workload> MakeCadWorkload(size_t num_txns, size_t ops_per_txn,
                                 size_t num_partitions, uint64_t seed) {
  // A CAD transaction sweeps design partitions one after another; each
  // partition visit costs items_per_partition + 1 operations (one pivot
  // read + the writes). Partition count per txn is sized to hit roughly
  // ops_per_txn.
  constexpr size_t kItemsPerPartition = 3;
  size_t per_visit = kItemsPerPartition + 1;
  size_t visits = std::max<size_t>(1, ops_per_txn / per_visit);
  visits = std::min(visits, num_partitions);
  PartitionedWorkloadConfig config;
  config.num_partitions = num_partitions;
  config.items_per_partition = kItemsPerPartition;
  config.num_txns = num_txns;
  config.partitions_per_txn = visits;
  config.cross_read_probability = 0.3;
  config.acyclic_cross_reads = true;
  config.branch_probability = 0.0;
  config.seed = seed;
  return MakePartitionedWorkload(config);
}

Result<Workload> MakeAnomalyWorkload(size_t pairs, bool fixed_structure) {
  if (pairs == 0) {
    return Status::InvalidArgument("need at least one anomaly pair");
  }
  Workload workload;
  std::vector<Formula> conjuncts;
  for (size_t i = 0; i < pairs; ++i) {
    NSE_ASSIGN_OR_RETURN(ItemId a, workload.db.AddItem(StrCat("a", i),
                                                       Domain::IntRange(-8, 8)));
    NSE_ASSIGN_OR_RETURN(ItemId b, workload.db.AddItem(StrCat("b", i),
                                                       Domain::IntRange(-8, 8)));
    NSE_ASSIGN_OR_RETURN(ItemId c, workload.db.AddItem(StrCat("c", i),
                                                       Domain::IntRange(-8, 8)));
    conjuncts.push_back(
        Implies(Gt(Var(a), Const(Value(0))), Gt(Var(b), Const(Value(0)))));
    conjuncts.push_back(Gt(Var(c), Const(Value(0))));
  }
  NSE_ASSIGN_OR_RETURN(
      IntegrityConstraint ic,
      IntegrityConstraint::FromConjuncts(workload.db, std::move(conjuncts)));
  workload.ic = std::move(ic);

  const Database& db = workload.db;
  for (size_t i = 0; i < pairs; ++i) {
    std::string a = StrCat("a", i);
    std::string b = StrCat("b", i);
    std::string c = StrCat("c", i);
    StmtBlock writer;
    StmtBlock reader;
    NSE_ASSIGN_OR_RETURN(StmtPtr set_a, MakeAssign(db, a, "1"));
    // The paper's b := |b| + 1 over unbounded integers; clamped to the
    // declared domain so the program stays correct from every consistent
    // state (min(|b|+1, 8) is still strictly positive, which is all the
    // conjunct needs).
    NSE_ASSIGN_OR_RETURN(
        StmtPtr bump_b,
        MakeAssign(db, b, StrCat("min(abs(", b, ") + 1, 8)")));
    if (fixed_structure) {
      // §3.1 repairs: both branches of each if emit identical structures.
      NSE_ASSIGN_OR_RETURN(StmtPtr keep_b, MakeAssign(db, b, b));
      NSE_ASSIGN_OR_RETURN(
          StmtPtr guard_b,
          MakeIf(db, StrCat(c, " > 0"), {bump_b}, {keep_b}));
      writer = {set_a, guard_b};
      NSE_ASSIGN_OR_RETURN(
          StmtPtr take_b,
          MakeAssign(db, c, StrCat(b, " + (", c, " - ", c, ")")));
      NSE_ASSIGN_OR_RETURN(
          StmtPtr keep_c,
          MakeAssign(db, c, StrCat(b, " - ", b, " + ", c)));
      NSE_ASSIGN_OR_RETURN(
          StmtPtr guard_c,
          MakeIf(db, StrCat(a, " > 0"), {take_b}, {keep_c}));
      reader = {guard_c};
    } else {
      NSE_ASSIGN_OR_RETURN(StmtPtr guard_b,
                           MakeIf(db, StrCat(c, " > 0"), {bump_b}));
      writer = {set_a, guard_b};
      NSE_ASSIGN_OR_RETURN(StmtPtr take_b, MakeAssign(db, c, b));
      NSE_ASSIGN_OR_RETURN(StmtPtr guard_c,
                           MakeIf(db, StrCat(a, " > 0"), {take_b}));
      reader = {guard_c};
    }
    workload.programs.emplace_back(StrCat("TP1_", i), std::move(writer));
    workload.programs.emplace_back(StrCat("TP2_", i), std::move(reader));
  }

  for (const TransactionProgram& program : workload.programs) {
    StructureAnalysis analysis = AnalyzeStructure(workload.db, program);
    TxnScript script;
    for (const OpStruct& op : analysis.signature) {
      script.steps.push_back(AccessStep{op.action, op.entity});
    }
    workload.scripts.push_back(std::move(script));
  }
  return workload;
}

Result<Workload> MakeMdbsWorkload(size_t num_sites, size_t global_txns,
                                  size_t local_txns, size_t sites_per_global,
                                  uint64_t seed) {
  CoreConfig core;
  core.num_partitions = num_sites;
  core.items_per_partition = 2;
  for (size_t g = 0; g < global_txns; ++g) {
    core.partitions_per_txn.push_back(
        std::min(sites_per_global, num_sites));
  }
  for (size_t l = 0; l < local_txns; ++l) {
    core.partitions_per_txn.push_back(1);
  }
  core.cross_read_probability = 0.25;
  core.acyclic_cross_reads = true;
  core.branch_probability = 0.0;
  core.domain_lo = -64;
  core.domain_hi = 64;
  core.seed = seed;
  core.arrival_spread = 0;
  return GenerateCore(core);
}

}  // namespace nse
