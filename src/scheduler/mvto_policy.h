// Multiversion timestamp ordering over a VersionStore. Each incarnation
// draws one timestamp; a read is served the newest version no younger
// than its stamp (recording a read stamp on that version), and a write
// installs a new version at its own stamp — so a "late" write is not the
// conflict it is under single-version TO: it lands as an older version
// behind whatever newer writes already happened, which is the Thomas
// write rule made structural (nothing is ever skipped; the version chain
// absorbs it). The only fatal conflict is the MVTO late-write check: a
// write at ts is rejected when some version older than ts was already
// read by a transaction younger than ts (VersionStore::HasReadBarrier) —
// installing now would invalidate that read.
//
// Reads never abort and read-only transactions never restart: there is
// always a version at or below any stamp (the initial version), and the
// only read that cannot proceed immediately is one whose target version
// is still uncommitted — it waits out the writer's commit/abort (the
// recoverability tax; reading dirty versions would need cascading
// aborts). Waits-for edges therefore only ever point reader -> writer and
// writers never wait, so no cycle can form: MVTO is deadlock-free under
// both drivers by construction.
//
// Committed traces are MVSR with timestamp order as the version order —
// the promised class the differential harness verifies through the
// version-annotated committed trace (every granted read carries its
// producing writer in AccessGrant::read_view).

#ifndef NSE_SCHEDULER_MVTO_POLICY_H_
#define NSE_SCHEDULER_MVTO_POLICY_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "scheduler/scheduler.h"
#include "state/version_store.h"

namespace nse {

class MvtoPolicy : public SchedulerPolicy {
 public:
  /// A policy for transaction ids [1, num_txns].
  explicit MvtoPolicy(size_t num_txns);

  std::string name() const override { return "mvto"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;

  /// A blocked read's only blocker: the active writer of the uncommitted
  /// newest version at or below the reader's stamp.
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// Writes rejected by the late-write (read barrier) check.
  uint64_t rejections() const;
  /// Reads that had to wait out an uncommitted version.
  uint64_t read_waits() const;
  /// Active (uncommitted, unaborted) incarnations holding a stamp — 0 at
  /// quiescence.
  size_t active_stamp_entries() const;
  /// The stamp of `txn`'s current incarnation, if active.
  std::optional<uint64_t> timestamp(TxnId txn) const;
  /// The version plane, for residual-state assertions.
  const VersionStore& store() const { return store_; }

 protected:
  void DoCommit(TxnId txn) override;
  void DoAbort(TxnId txn) override;

 private:
  /// Caller holds mu_.
  uint64_t EnsureTimestamp(TxnId txn);
  /// Oldest active stamp, or the clock when nothing is active — the
  /// truncation watermark. Caller holds mu_.
  uint64_t OldestActiveStamp() const;

  mutable std::mutex mu_;
  VersionStore store_;
  uint64_t clock_ = 0;
  std::vector<std::optional<uint64_t>> ts_;
  /// Items the current incarnation installed a version on (deduped).
  std::vector<std::vector<ItemId>> written_;
  uint64_t rejections_ = 0;
  uint64_t read_waits_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_MVTO_POLICY_H_
