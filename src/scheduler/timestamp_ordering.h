// Basic timestamp ordering (TO): the classical non-locking serializable
// scheduler. Every transaction draws a unique timestamp from a global
// counter when it (re)starts; conflicting operations must execute in
// timestamp order, and an operation arriving too late — a read of an item
// already written by a younger (larger-timestamp) transaction, or a write
// of an item already read or written by a younger one — is rejected: the
// requester aborts and restarts with a fresh (larger) timestamp via the
// driver's kAbortSelf path. The policy never waits, so it never blocks,
// never deadlocks, and reports no Blockers.
//
// Concurrency: one policy mutex serializes requests and retraction, which
// is also what makes the trace linearization sound — the trace sequence
// number is drawn inside the same critical section that admitted the
// access, so seq order embeds timestamp-admission order.
//
// Every recorded conflict therefore points from a smaller final timestamp
// to a larger one (aborted incarnations vanish from the trace along with
// their table entries), so the committed trace's conflict graph embeds in
// the timestamp order — acyclic, i.e. CSR *by construction*, with the
// timestamp order itself a serialization order. That embedding is the
// policy's structural invariant, pinned seed-for-seed by the differential
// harness.
//
// The Thomas write rule is a toggle: a write that is older than the item's
// newest write but not older than any read (ts >= rts(x), ts < wts(x)) is
// obsolete — in timestamp order it would be overwritten immediately by the
// newer write that already happened — so instead of aborting, the policy
// answers AccessVerdict::kSkip and the write is elided from the
// committed trace entirely. Eliding (rather than tracing) the write is
// what keeps the CSR-by-construction argument intact: the trace only ever
// contains operations that passed their timestamp test.
//
// This is the structural-schedule setting of the paper (class membership
// depends only on actions, items and order): reads may observe active
// writers, and recoverability/cascading-abort concerns are out of scope —
// an aborted writer's operations are removed from the trace by the
// driver's shared restart path before the trace is ever classified.

#ifndef NSE_SCHEDULER_TIMESTAMP_ORDERING_H_
#define NSE_SCHEDULER_TIMESTAMP_ORDERING_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "scheduler/scheduler.h"

namespace nse {

/// Basic TO policy over a fixed transaction population (ids 1..num_txns).
class TimestampOrderingPolicy : public SchedulerPolicy {
 public:
  struct Options {
    /// Thomas write rule: skip (rather than reject) writes that lost the
    /// race against a newer write but conflict with no newer read.
    bool thomas_write_rule = false;
  };

  explicit TimestampOrderingPolicy(size_t num_txns);
  TimestampOrderingPolicy(size_t num_txns, Options options);

  std::string name() const override {
    return options_.thomas_write_rule ? "to+thomas" : "to";
  }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// The timestamp of txn's current incarnation (assigned at its first
  /// access since the last (re)start), or nullopt before it ran. For a
  /// committed transaction this is the final timestamp the serialization
  /// order embeds.
  std::optional<uint64_t> timestamp(TxnId txn) const;

  /// Accesses rejected for arriving out of timestamp order (each one
  /// became a kAbortSelf).
  uint64_t rejections() const { return rejections_; }

  /// Writes elided by the Thomas write rule (kSkip verdicts).
  uint64_t skipped_writes() const { return skipped_writes_; }

  /// Active (uncommitted-incarnation) stamp entries across every item —
  /// 0 at quiescence, or an abort path leaked (the chaos harness's
  /// residual-state check; committed stamps fold into scalar maxima and
  /// are expected to persist).
  size_t active_stamp_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const ItemState& item : items_) {
      total += item.readers.size() + item.writers.size();
    }
    return total;
  }

 protected:
  void DoCommit(TxnId txn) override;
  void DoAbort(TxnId txn) override;

 private:
  /// One recorded access: the incarnation's timestamp, keyed by txn.
  struct Stamp {
    TxnId txn = 0;
    uint64_t ts = 0;
  };
  /// Per-entry stamps are kept only for *active* incarnations (they may
  /// still abort and retract); commit folds them into the two scalars —
  /// committed stamps never retract, so only their maxima matter. This
  /// keeps each access check O(active accessors) and the footprint
  /// bounded by the active window instead of everything ever committed
  /// (the TO counterpart of SgtPolicy's committed-node GC).
  struct ItemState {
    std::vector<Stamp> readers;  // active incarnations only (deduped)
    std::vector<Stamp> writers;
    uint64_t committed_rts = 0;  // max committed read timestamp
    uint64_t committed_wts = 0;  // max committed write timestamp
  };

  /// Assigns txn a fresh timestamp if its incarnation has none yet.
  uint64_t EnsureTimestamp(TxnId txn);

  /// The newest timestamp among `stamps` belonging to other transactions.
  static uint64_t MaxOtherTs(const std::vector<Stamp>& stamps, TxnId self);

  static void RecordStamp(std::vector<Stamp>& stamps, TxnId txn, uint64_t ts);

  /// Adds `item` to the txn's footprint list, once. Caller holds mu_.
  void RecordTouched(TxnId txn, ItemId item);

  Options options_;
  mutable std::mutex mu_;
  uint64_t clock_ = 0;                       // last timestamp handed out
  std::vector<std::optional<uint64_t>> ts_;  // by txn id
  std::vector<ItemState> items_;             // by item id, grown on demand
  /// Items the txn's current incarnation recorded stamps on — the abort
  /// path erases exactly this footprint instead of scanning every item
  /// (restarts are TO's whole cost model, so aborts are not rare).
  std::vector<std::vector<ItemId>> touched_;  // by txn id
  uint64_t rejections_ = 0;
  uint64_t skipped_writes_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_TIMESTAMP_ORDERING_H_
