#include "scheduler/waits_for.h"

#include <algorithm>

namespace nse {

namespace {

const std::optional<std::vector<TxnId>> kNoCycle;
const std::optional<std::pair<TxnId, TxnId>> kNoEdge;

}  // namespace

void WaitsForTracker::EnsureTxns(size_t n) {
  if (n <= capacity_) return;
  size_t grown = std::max(n, capacity_ == 0 ? size_t{8} : capacity_ * 2);
  std::vector<TxnId> nodes;
  nodes.reserve(grown);
  for (TxnId id = 1; id <= grown; ++id) nodes.push_back(id);
  ConflictGraph fresh(std::move(nodes), CycleMode::kIncremental);
  // Replay the current waits into the larger graph (rare: only when a new
  // high txn id first appears).
  for (TxnId from = 1; from <= capacity_; ++from) {
    for (TxnId to : waits_[from]) fresh.AddEdge(from, to);
  }
  graph_ = std::move(fresh);
  waits_.resize(grown + 1);
  capacity_ = grown;
}

void WaitsForTracker::SetWaits(TxnId txn, const std::vector<TxnId>& blockers) {
  TxnId high = txn;
  for (TxnId blocker : blockers) high = std::max(high, blocker);
  EnsureTxns(high);

  std::vector<TxnId> next;
  next.reserve(blockers.size());
  for (TxnId blocker : blockers) {
    if (blocker != txn && blocker != 0) next.push_back(blocker);
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());

  std::vector<TxnId>& prev = waits_[txn];
  if (next == prev) return;  // the common stall tick: nothing changed
  // Retract stale edges first (removals cannot create cycles), then insert
  // the new waits — each insert is where a deadlock can close.
  for (TxnId old : prev) {
    if (!std::binary_search(next.begin(), next.end(), old)) {
      graph_->RemoveEdge(txn, old);
      ++edges_removed_;
    }
  }
  for (TxnId blocker : next) {
    if (!std::binary_search(prev.begin(), prev.end(), blocker)) {
      graph_->AddEdge(txn, blocker);
      ++edges_added_;
    }
  }
  prev = std::move(next);
}

void WaitsForTracker::OnResolved(TxnId txn) {
  if (txn > capacity_) return;
  size_t dropped = waits_[txn].size();
  // Strip txn from its waiters' recorded blocker sets (exactly the graph's
  // predecessors of txn) so later diffs stay in sync with the graph —
  // O(degree), not O(capacity).
  for (TxnId waiter : graph_->Predecessors(txn)) {
    std::vector<TxnId>& set = waits_[waiter];
    auto it = std::lower_bound(set.begin(), set.end(), txn);
    if (it != set.end() && *it == txn) {
      set.erase(it);
      ++dropped;
    }
  }
  graph_->RemoveEdgesOf(txn);
  waits_[txn].clear();
  edges_removed_ += dropped;
}

bool WaitsForTracker::has_cycle() const {
  return graph_.has_value() && graph_->has_cycle();
}

const std::optional<std::vector<TxnId>>& WaitsForTracker::cycle() const {
  return graph_.has_value() ? graph_->cycle() : kNoCycle;
}

const std::optional<std::pair<TxnId, TxnId>>& WaitsForTracker::cycle_edge()
    const {
  return graph_.has_value() ? graph_->cycle_edge() : kNoEdge;
}

}  // namespace nse
