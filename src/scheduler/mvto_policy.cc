#include "scheduler/mvto_policy.h"

#include <algorithm>

namespace nse {

MvtoPolicy::MvtoPolicy(size_t num_txns)
    : ts_(num_txns + 1), written_(num_txns + 1) {}

uint64_t MvtoPolicy::EnsureTimestamp(TxnId txn) {
  if (!ts_[txn].has_value()) ts_[txn] = ++clock_;
  return *ts_[txn];
}

uint64_t MvtoPolicy::OldestActiveStamp() const {
  uint64_t oldest = clock_;
  for (const std::optional<uint64_t>& t : ts_) {
    if (t.has_value()) oldest = std::min(oldest, *t);
  }
  return oldest;
}

Result<AccessGrant> MvtoPolicy::RequestAccess(TxnId txn,
                                              const TxnScript& script,
                                              size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  WaitTicket ticket = MakeTicket();  // before the decision: a wait may follow
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ts = EnsureTimestamp(txn);
  const AccessStep& access = script.steps[step];
  if (access.action == OpAction::kRead) {
    Result<VersionView> peek = store_.Peek(access.item, ts);
    NSE_RETURN_IF_ERROR(peek.status());
    if (!peek->committed && peek->writer != txn) {
      // The version this read must be served is still in flight. Waiting
      // out the writer is the recoverable alternative to a dirty read;
      // the writer never waits, so this edge can never close a cycle.
      ++read_waits_;
      return WaitOn(ticket);
    }
    Result<VersionView> view = store_.ReadAtTimestamp(access.item, ts);
    NSE_RETURN_IF_ERROR(view.status());
    return GrantedRead(view->writer, view->value);
  }
  Result<bool> barrier = store_.HasReadBarrier(access.item, ts);
  NSE_RETURN_IF_ERROR(barrier.status());
  if (*barrier) {
    // A transaction younger than ts already read a version older than ts:
    // installing this write now would invalidate that read. Restart with
    // a fresh (larger) stamp, like single-version TO. Note what is *not*
    // here: no newer-write conflict — a stale write simply lands as an
    // older version (the Thomas rule, structurally).
    ++rejections_;
    return AbortSelf();
  }
  AccessGrant grant = Granted();  // seq drawn under mu_: embeds grant order
  NSE_RETURN_IF_ERROR(store_.InstallVersion(
      access.item, ts, txn, static_cast<int64_t>(grant.trace_seq),
      /*committed=*/false));
  std::vector<ItemId>& footprint = written_[txn];
  if (std::find(footprint.begin(), footprint.end(), access.item) ==
      footprint.end()) {
    footprint.push_back(access.item);
  }
  return grant;
}

void MvtoPolicy::DoCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ts_[txn].has_value()) {
    for (ItemId item : written_[txn]) {
      Status committed = store_.CommitVersion(item, *ts_[txn]);
      NSE_CHECK_MSG(committed.ok(), "commit lost an installed version");
    }
    written_[txn].clear();
    written_[txn].shrink_to_fit();
    ts_[txn].reset();
  }
  // Epoch advance: everything below the oldest still-active stamp is
  // unreachable by any current or future reader (restarts draw fresh,
  // larger stamps), so the chains fold down to one survivor per item once
  // the run quiesces.
  store_.TruncateBelow(OldestActiveStamp());
}

void MvtoPolicy::DoAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ts_[txn].has_value()) return;  // idempotent: already retracted
  for (ItemId item : written_[txn]) {
    Status removed = store_.RemoveVersion(item, *ts_[txn]);
    NSE_CHECK_MSG(removed.ok(), "abort failed to retract a version");
  }
  written_[txn].clear();
  written_[txn].shrink_to_fit();
  ts_[txn].reset();
  // Read stamps the incarnation left behind are kept: retracting rts
  // could only admit writes the retracted reads no longer forbid, and
  // keeping them is merely conservative (at worst one extra restart).
}

std::vector<TxnId> MvtoPolicy::Blockers(TxnId txn, const TxnScript& script,
                                        size_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (step >= script.steps.size()) return {};
  if (txn >= ts_.size() || !ts_[txn].has_value()) return {};
  const AccessStep& access = script.steps[step];
  if (access.action != OpAction::kRead) return {};
  Result<VersionView> peek = store_.Peek(access.item, *ts_[txn]);
  if (!peek.ok()) return {};
  if (!peek->committed && peek->writer != txn) {
    return {static_cast<TxnId>(peek->writer)};
  }
  return {};
}

uint64_t MvtoPolicy::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

uint64_t MvtoPolicy::read_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_waits_;
}

size_t MvtoPolicy::active_stamp_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const std::optional<uint64_t>& t : ts_) {
    if (t.has_value()) ++active;
  }
  return active;
}

std::optional<uint64_t> MvtoPolicy::timestamp(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn < ts_.size() ? ts_[txn] : std::nullopt;
}

}  // namespace nse
