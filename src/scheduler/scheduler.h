// Scheduler substrate: the runnable counterpart of the paper's schedule
// classes. Transactions are *scripts* — access plans (action, item) known up
// front, i.e. the straight-line / fixed-structure setting of Theorem 1 and
// of [14] — and a SchedulerPolicy decides, operation by operation, whether
// a transaction may proceed.
//
// The policy contract is thread-safe: any number of engine workers (or the
// single-threaded tick simulator, which implements the same interface
// deterministically) may call RequestAccess / Commit / Abort concurrently.
// A request answers with an AccessGrant instead of a bare enum:
//   - kGranted carries a trace sequence number drawn inside the policy's
//     grant-ordering critical section, so the committed trace can be
//     linearized exactly as the policy serialized the conflicts;
//   - kWait carries a WaitTicket (hub + epoch observed *before* the failed
//     attempt), so a waiter can block on the hub without lost wakeups
//     instead of polling;
//   - wounds (policy-condemned *other* transactions) are queued on the
//     policy and drained by the driver via DrainCondemned().
// Commit/Abort are non-virtual shells around DoCommit/DoAbort that always
// Poke() the wait hub afterwards — releasing a footprint is precisely what
// unblocks waiters, and making the notify structural means no policy can
// forget it.

#ifndef NSE_SCHEDULER_SCHEDULER_H_
#define NSE_SCHEDULER_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "state/database.h"
#include "txn/operation.h"

namespace nse {

/// One planned access of a scripted transaction.
struct AccessStep {
  OpAction action = OpAction::kRead;
  ItemId item = 0;
};

/// A scripted transaction: its full access plan plus arrival time.
struct TxnScript {
  std::vector<AccessStep> steps;
  uint64_t arrival_tick = 0;

  /// Index of the last step touching an item of `d`, or SIZE_MAX if none.
  size_t LastStepTouching(const DataSet& d) const;
};

/// Verdict of a policy for an access request.
enum class AccessVerdict {
  kGranted,    ///< perform the operation now
  kWait,       ///< blocked; block on the grant's WaitTicket and retry
  kAbortSelf,  ///< abort the requesting txn and restart it from scratch
               ///< (optimistic policies: waiting cannot resolve the
               ///< conflict, e.g. an SGT veto against committed edges)
  kSkip,       ///< the step is logically subsumed and must not execute:
               ///< the txn advances past it and nothing enters the
               ///< committed trace (Thomas write rule — an obsolete
               ///< write overwritten, in timestamp order, by a newer
               ///< one that already happened)
};

/// A notification rendezvous for blocked requesters. Waiters snapshot the
/// epoch *before* their failed attempt and sleep until it moves past that
/// snapshot; any footprint release bumps the epoch under the hub mutex, so
/// a wakeup between decision and sleep cannot be lost.
class WaitHub {
 public:
  /// Current epoch. Snapshot this *before* the attempt whose failure you
  /// would wait out.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Bumps the epoch and wakes all waiters.
  void Notify();

  /// Blocks until the epoch differs from `seen` or `timeout_micros` elapse.
  /// Returns true iff the epoch moved (false = timeout). A stale `seen`
  /// returns true immediately.
  bool AwaitChange(uint64_t seen, uint64_t timeout_micros);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> epoch_{0};
};

/// Where (and from when) a kWait verdict should be waited out.
struct WaitTicket {
  WaitHub* hub = nullptr;
  uint64_t epoch = 0;  ///< hub epoch observed before the failed attempt
};

/// Which version a granted read observed, for multiversion policies. A
/// multiversion trace has no positional reads-from — a read may be served
/// a version older than the latest preceding write — so the grant itself
/// records the producing writer, and the drivers surface the annotation
/// alongside the committed trace (SimResult/EngineResult read_sources).
struct VersionRead {
  TxnId writer = 0;   ///< transaction whose write produced the version
                      ///< (0 = the initial state; may be the reader
                      ///< itself for reads of its own pending write)
  int64_t value = 0;  ///< the version's value; the drivers trace it as
                      ///< the read's recorded value
};

/// Answer to one access request.
struct AccessGrant {
  AccessVerdict verdict = AccessVerdict::kGranted;
  /// kGranted only: position of this operation in the policy's conflict
  /// serialization. Strictly increasing along every conflict edge the
  /// policy admitted, so sorting committed operations by trace_seq yields
  /// a history equivalent to what the threads actually did.
  uint64_t trace_seq = 0;
  /// kWait only: rendezvous for the retry.
  WaitTicket wait;
  /// kGranted reads under a multiversion policy: the version observed.
  /// Single-version policies leave it absent and the drivers fall back to
  /// the single-version value plane.
  std::optional<VersionRead> read_view;
};

/// A pluggable, thread-safe concurrency-control policy.
///
/// The driver (engine worker or tick simulator) calls RequestAccess before
/// a transaction's next step; a kGranted verdict means the step executes
/// now (any release work for non-strict policies already happened inside
/// the call). Commit / Abort end a transaction's footprint (an aborted
/// transaction restarts from its first step with the same id).
///
/// Thread-safety contract: RequestAccess, Commit, Abort, Blockers and
/// DrainCondemned may be called concurrently from any thread. Statistics
/// accessors (veto_events and subclass counters/structure accessors) are
/// only required to be exact at quiescence — after every driver thread has
/// joined.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Human-readable policy name (appears in benchmark output).
  virtual std::string name() const = 0;

  /// May transaction `txn` perform `script.steps[step]` now?
  /// Returns a non-OK Status only for malformed requests (`step` out of
  /// range); scheduling outcomes — including aborts — are verdicts, not
  /// errors.
  virtual Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                            size_t step) = 0;

  /// Called when `txn` performed its last step. Non-virtual shell:
  /// retraction (DoCommit) then a structural Poke() so waiters re-check.
  void Commit(TxnId txn) {
    DoCommit(txn);
    Poke();
  }

  /// Called when `txn` aborts — as a deadlock victim, a wound victim, after
  /// its own kAbortSelf verdict, or through an injected fault (client
  /// abort / terminal crash). DoAbort must fully retract `txn`'s footprint
  /// (locks, graph edges, stamps) and must be idempotent: a crash-at-op
  /// fault can abort a transaction that already aborted and never ran
  /// again, so a repeated Abort for the same quiescent txn must be a
  /// harmless no-op.
  void Abort(TxnId txn) {
    DoAbort(txn);
    Poke();
  }

  /// Transactions currently blocking `txn`'s pending request (for deadlock
  /// detection). Only meaningful while `txn` is waiting out a kWait
  /// verdict for this step. May be called from a detector thread while
  /// other transactions are mid-request.
  virtual std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                                      size_t step) const = 0;

  /// RequestAccess calls this policy answered kWait because granting the
  /// access would have violated the policy's schedule-class guarantee (an
  /// SGT cycle veto), as opposed to an ordinary lock wait. Lock-based
  /// policies report 0; drivers copy the count into their result vetoes.
  virtual uint64_t veto_events() const { return 0; }

  /// Transactions this policy condemned during recent RequestAccess calls,
  /// *other than the requesters* — wound-wait wounding a younger lock
  /// holder, the SGT victim-choice policy condemning the cheapest active
  /// cycle participant. The driver drains the queue after every request
  /// and rolls each victim back through the shared restart path (they
  /// restart from scratch, like deadlock victims). Victims must be active
  /// transactions and must never include the requester — the requester
  /// aborts itself by returning kAbortSelf instead. Each condemnation is
  /// delivered exactly once.
  std::vector<TxnId> DrainCondemned() {
    std::lock_guard<std::mutex> lock(condemned_mu_);
    std::vector<TxnId> out;
    out.swap(condemned_);
    return out;
  }

  /// Wakes every waiter on this policy's hub. Called structurally after
  /// Commit/Abort; policies that release footprint *inside* RequestAccess
  /// (predicatewise 2PL's per-conjunct release) call it themselves at the
  /// release point. Wrappers override to forward to inner policies.
  virtual void Poke() { hub_.Notify(); }

  /// The hub kWait tickets of this policy point at (wrappers may hand out
  /// tickets on an inner policy's hub instead).
  WaitHub& wait_hub() { return hub_; }

 protected:
  /// Retract `txn`'s footprint after its last step committed.
  virtual void DoCommit(TxnId txn) = 0;

  /// Retract `txn`'s footprint after an abort (idempotent; see Abort).
  virtual void DoAbort(TxnId txn) = 0;

  /// Next trace sequence number. Call inside the grant-ordering critical
  /// section (while holding the item lock / policy mutex that serialized
  /// the conflict) so seq order embeds conflict order.
  uint64_t NextTraceSeq() {
    return 1 + trace_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Queue `victim` for the driver's wound path (DrainCondemned).
  void Condemn(TxnId victim) {
    std::lock_guard<std::mutex> lock(condemned_mu_);
    condemned_.push_back(victim);
  }

  /// Ticket for *this* policy's hub, stamped with the current epoch.
  /// Take it before the decision work of a request that may answer kWait.
  WaitTicket MakeTicket() { return WaitTicket{&hub_, hub_.epoch()}; }

  /// Grant helpers.
  AccessGrant Granted() {
    return AccessGrant{AccessVerdict::kGranted, NextTraceSeq(), WaitTicket{},
                       std::nullopt};
  }
  /// Granted read with a version annotation (multiversion policies).
  AccessGrant GrantedRead(TxnId writer, int64_t value) {
    AccessGrant grant = Granted();
    grant.read_view = VersionRead{writer, value};
    return grant;
  }
  static AccessGrant WaitOn(WaitTicket ticket) {
    return AccessGrant{AccessVerdict::kWait, 0, ticket, std::nullopt};
  }
  static AccessGrant AbortSelf() {
    return AccessGrant{AccessVerdict::kAbortSelf, 0, WaitTicket{},
                       std::nullopt};
  }
  static AccessGrant Skip() {
    return AccessGrant{AccessVerdict::kSkip, 0, WaitTicket{}, std::nullopt};
  }

  /// Malformed-request guard shared by every policy.
  static Status CheckStep(const TxnScript& script, size_t step) {
    if (step >= script.steps.size()) {
      return Status::OutOfRange("access step index out of range");
    }
    return Status::Ok();
  }

 private:
  WaitHub hub_;
  std::atomic<uint64_t> trace_seq_{0};
  std::mutex condemned_mu_;
  std::vector<TxnId> condemned_;
};

/// Test / single-threaded convenience: request an access and return just
/// the verdict, aborting on a malformed request. The step-by-step policy
/// unit tests drive the contract through this.
inline AccessVerdict Access(SchedulerPolicy& policy, TxnId txn,
                            const TxnScript& script, size_t step) {
  Result<AccessGrant> grant = policy.RequestAccess(txn, script, step);
  NSE_CHECK_MSG(grant.ok(), "malformed access request");
  return grant->verdict;
}

}  // namespace nse

#endif  // NSE_SCHEDULER_SCHEDULER_H_
