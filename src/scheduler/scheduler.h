// Scheduler substrate: the runnable counterpart of the paper's schedule
// classes. Transactions are *scripts* — access plans (action, item) known up
// front, i.e. the straight-line / fixed-structure setting of Theorem 1 and
// of [14] — and a SchedulerPolicy decides, operation by operation, whether
// a transaction may proceed. The simulator (sim.h) drives policies in
// simulated time and emits both performance metrics and the (structural)
// schedule produced, so every checker in src/analysis can audit scheduler
// output.

#ifndef NSE_SCHEDULER_SCHEDULER_H_
#define NSE_SCHEDULER_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "state/database.h"
#include "txn/operation.h"

namespace nse {

/// One planned access of a scripted transaction.
struct AccessStep {
  OpAction action = OpAction::kRead;
  ItemId item = 0;
};

/// A scripted transaction: its full access plan plus arrival time.
struct TxnScript {
  std::vector<AccessStep> steps;
  uint64_t arrival_tick = 0;

  /// Index of the last step touching an item of `d`, or SIZE_MAX if none.
  size_t LastStepTouching(const DataSet& d) const;
};

/// Verdict of a policy for an access request.
enum class SchedulerDecision {
  kProceed,       ///< perform the operation now
  kWait,          ///< blocked; retry later
  kAbortRestart,  ///< abort the requesting txn and restart it from scratch
                  ///< (optimistic policies: waiting cannot resolve the
                  ///< conflict, e.g. an SGT veto against committed edges)
  kSkip,          ///< the step is logically subsumed and must not execute:
                  ///< the txn advances past it and nothing enters the
                  ///< committed trace (Thomas write rule — an obsolete
                  ///< write overwritten, in timestamp order, by a newer
                  ///< one that already happened)
};

/// A pluggable concurrency-control policy.
///
/// The simulator calls OnAccess before a transaction's next step; if it
/// returns kProceed the step executes and AfterAccess runs. OnComplete /
/// OnAbort end a transaction's footprint (an aborted transaction restarts
/// from its first step with the same id).
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Human-readable policy name (appears in benchmark output).
  virtual std::string name() const = 0;

  /// May transaction `txn` perform `script.steps[step]` now?
  virtual SchedulerDecision OnAccess(TxnId txn, const TxnScript& script,
                                     size_t step) = 0;

  /// Called after the step executed (release point for non-strict policies).
  virtual void AfterAccess(TxnId txn, const TxnScript& script,
                           size_t step) = 0;

  /// Called when `txn` performed its last step.
  virtual void OnComplete(TxnId txn) = 0;

  /// Called when `txn` aborts — as a deadlock victim, a wound victim, after
  /// its own kAbortRestart verdict, or through an injected fault (client
  /// abort / terminal crash). Must fully retract `txn`'s footprint (locks,
  /// graph edges, stamps) and must be idempotent: a crash-at-op fault can
  /// abort a transaction that already aborted and never ran again, so a
  /// repeated OnAbort for the same quiescent txn must be a harmless no-op.
  virtual void OnAbort(TxnId txn) = 0;

  /// Transactions currently blocking `txn`'s pending request (for deadlock
  /// detection). Only meaningful right after OnAccess returned kWait.
  virtual std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                                      size_t step) const = 0;

  /// OnAccess calls this policy answered kWait because granting the access
  /// would have violated the policy's schedule-class guarantee (an SGT
  /// cycle veto), as opposed to an ordinary lock wait. Lock-based policies
  /// report 0; the simulator copies the count into SimResult.vetoes.
  virtual uint64_t veto_events() const { return 0; }

  /// Transactions this policy decided, during the last OnAccess call, to
  /// abort *other than the requester* — wound-wait wounding a younger lock
  /// holder, the SGT victim-choice policy aborting the cheapest active
  /// cycle participant. The simulator drains the list right after every
  /// OnAccess and rolls each victim back through the shared restart path
  /// (they restart from scratch, like deadlock victims). Victims must be
  /// active transactions and must never include the requester — the
  /// requester aborts itself by returning kAbortRestart instead. Default:
  /// no wounds.
  virtual std::vector<TxnId> DrainWounds() { return {}; }
};

}  // namespace nse

#endif  // NSE_SCHEDULER_SCHEDULER_H_
