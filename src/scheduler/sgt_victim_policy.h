// Victim-choice SGT: the ROADMAP variant that vetoes by aborting the
// *other* cycle participant. Baseline SgtPolicy inspects only the
// cycle-closing edge's source, and when a veto escalates — committed-only
// sources at once, recurring vetoes against active sources at the veto
// threshold — it always restarts the requester, even when an *active*
// transaction elsewhere on the cycle path could break the cycle more
// cheaply by aborting. This policy keeps the baseline's escalation
// *timing* bit-for-bit (wait while an active source could still retract
// the edge, within the threshold) but changes the *resolution*: it traces
// the would-be cycle (ConflictGraph::WouldCloseCycleWitness returns the
// to → ... → from path behind each vetoing edge) and sacrifices the
// cheapest active participant — fewest operations recorded since its last
// (re)start, i.e. least work lost; ties broken by smallest txn id for
// determinism. When that victim is the requester itself the policy
// answers kAbortSelf exactly as before; otherwise it wounds the victim
// (the driver drains DrainCondemned and rolls it back through the shared
// restart path) and the requester waits for the retraction — which has
// already uncycled the graph — before retrying.
//
// A wound happens only when the victim is *strictly* cheaper than the
// requester (ties go to the baseline verdict), so every single wound
// sacrifices less recorded work than the baseline's requester-restart
// would have at the same decision point — the per-decision contract
// (wound_savings()).
//
// Options::victim_cost selects the scoring rule. The default kSunkCost is
// the strictly-cheaper sunk-work rule above. kPredictive scores each
// candidate by its estimated re-execution cost going forward — remaining
// script steps plus victim_backoff per prior restart — which breaks the
// sunk-cost rule's pathological hotspot loop: a freshly wounded
// transaction restarts with zero sunk work, so on a near-total hotspot
// the backward-looking rule condemns the same victim every round while
// the backoff term steers the predictive rule away from it. Whole-run rollback counts of two different
// schedulers diverge chaotically after the first differing decision, so
// the cross-run claim is pinned in aggregate: over the differential
// harness's seed sweep, total rollbacks (restarts + wounds + deadlock
// aborts) and plain self-restarts both stay at or below the baseline's —
// empirically at every prefix of the sweep, not just its end. Committed
// traces remain CSR by construction — every admission goes through the
// same WouldCloseCycle clearance as the baseline.

#ifndef NSE_SCHEDULER_SGT_VICTIM_POLICY_H_
#define NSE_SCHEDULER_SGT_VICTIM_POLICY_H_

#include <cstdint>
#include <vector>

#include "scheduler/sgt_policy.h"

namespace nse {

/// SGT with cycle-path victim choice (see file comment).
class SgtVictimPolicy : public SgtPolicy {
 public:
  explicit SgtVictimPolicy(size_t num_txns);
  SgtVictimPolicy(size_t num_txns, Options options);

  std::string name() const override { return "sgt-victim"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;

  /// Cycle participants condemned instead of the requester.
  uint64_t wounds_requested() const { return wounds_requested_; }

  /// Score margin saved at the wound decision points: for each wound,
  /// requester score minus victim score (both at that instant) under the
  /// configured cost rule — recorded operations under kSunkCost. The
  /// strictly-cheaper rule makes every wound contribute at least 1 — the
  /// policy's per-decision contract (full-run rollback counts diverge
  /// chaotically between two different schedulers, so the cross-run
  /// comparison is pinned in aggregate over the fuzz sweep instead).
  uint64_t wound_savings() const { return wound_savings_; }

 private:
  uint64_t wounds_requested_ = 0;
  uint64_t wound_savings_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_SGT_VICTIM_POLICY_H_
