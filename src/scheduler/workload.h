// Workload generators.
//
// The core generator builds *partitioned* workloads: the database is split
// into partitions (one IC conjunct each, with an all-items-equal invariant),
// and every generated transaction program is correct by construction — it
// rewrites all items of each visited partition to one common clamped value,
// so it preserves the invariant from any start state. This gives the
// experiments the paper's standing assumption ("all transaction programs
// are correct") for free, while remaining configurable along the axes the
// theorems care about:
//
//  * cross_read_probability — transactions read a pivot from another
//    partition (creates DAG(S, IC) edges);
//  * acyclic_cross_reads — cross reads only from lower-numbered partitions
//    (forces DAG acyclicity, the Theorem 3 regime);
//  * branch_probability — wraps partition updates in data-dependent ifs
//    (destroys fixed structure, the Example 2/3 regime).
//
// Presets: MakeCadWorkload (few long transactions over design partitions,
// §1/[11]) and MakeMdbsWorkload (sites as conjuncts with global + local
// transactions, §4/[4]).

#ifndef NSE_SCHEDULER_WORKLOAD_H_
#define NSE_SCHEDULER_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "constraints/integrity_constraint.h"
#include "scheduler/scheduler.h"
#include "txn/program.h"

namespace nse {

/// Knobs of the partitioned-workload generator.
struct PartitionedWorkloadConfig {
  size_t num_partitions = 4;       ///< conjuncts l
  size_t items_per_partition = 2;  ///< |d_e| (>= 1)
  size_t num_txns = 8;
  size_t partitions_per_txn = 2;   ///< partitions each txn updates
  double cross_read_probability = 0.5;
  bool acyclic_cross_reads = false;
  double branch_probability = 0.0;
  /// Contention knob: probability that a transaction redirects one of its
  /// partition visits to partition 0 (the hot spot). 0 leaves the uniform
  /// partition choice (and the seeded rng stream) untouched; values near 1
  /// funnel most transactions through one shared partition — the regime
  /// where lock-based and optimistic policies diverge (bench_sgt, the
  /// policy-vs-checker differential fuzz harness).
  double hotspot_probability = 0.0;
  int64_t domain_lo = -64;
  int64_t domain_hi = 64;
  uint64_t seed = 1;
  uint64_t arrival_spread = 0;     ///< arrival ticks ~ U[0, spread]
};

/// A generated workload: catalog, constraint, programs, and the scripts the
/// simulator runs (derived from the programs' access structures).
struct Workload {
  Database db;
  std::optional<IntegrityConstraint> ic;
  std::vector<TransactionProgram> programs;
  std::vector<TxnScript> scripts;

  /// Convenience view of programs as pointers (what the interleaver takes).
  std::vector<const TransactionProgram*> ProgramPtrs() const;
};

/// Builds a partitioned workload (see file comment).
Result<Workload> MakePartitionedWorkload(const PartitionedWorkloadConfig&);

/// CAD preset (§1, [11]): few long transactions sweeping many design
/// partitions in sequence — the regime where strict 2PL's end-of-transaction
/// lock holding hurts most.
Result<Workload> MakeCadWorkload(size_t num_txns, size_t ops_per_txn,
                                 size_t num_partitions, uint64_t seed);

/// MDBS preset (§4, [4]): `num_sites` autonomous sites (one conjunct each);
/// global transactions touch several sites, local transactions one.
Result<Workload> MakeMdbsWorkload(size_t num_sites, size_t global_txns,
                                  size_t local_txns, size_t sites_per_global,
                                  uint64_t seed);

/// Example-2-style anomaly workload: `pairs` independent copies of the
/// paper's counterexample. Pair i contributes conjuncts
/// (a_i > 0 -> b_i > 0) over {a_i, b_i} and (c_i > 0) over {c_i}, a writer
/// program TP1_i (a_i := 1; if (c_i > 0) then b_i := |b_i| + 1) and a
/// reader program TP2_i (if (a_i > 0) then c_i := b_i).
///
/// With `fixed_structure` false these are the paper's original programs:
/// PWSR executions exist that violate strong correctness (Example 2).
/// With true, both are replaced by their §3.1 fixed-structure repairs and
/// Theorem 1 applies to every PWSR execution.
Result<Workload> MakeAnomalyWorkload(size_t pairs, bool fixed_structure);

}  // namespace nse

#endif  // NSE_SCHEDULER_WORKLOAD_H_
