#include "scheduler/dr_scheduler.h"

namespace nse {

std::optional<TxnId> DelayedReadScheduler::DirtyWriter(ItemId item) const {
  auto it = last_writer_.find(item);
  if (it == last_writer_.end()) return std::nullopt;
  if (incomplete_.count(it->second) == 0) return std::nullopt;
  return it->second;
}

SchedulerDecision DelayedReadScheduler::OnAccess(TxnId txn,
                                                 const TxnScript& script,
                                                 size_t step) {
  const AccessStep& access = script.steps[step];
  std::optional<TxnId> dirty;
  if (access.action == OpAction::kRead) dirty = DirtyWriter(access.item);
  SchedulerDecision decision;
  if (dirty.has_value() && *dirty != txn) {
    decision = SchedulerDecision::kWait;
  } else {
    decision = inner_.OnAccess(txn, script, step);
    if (decision == SchedulerDecision::kProceed) {
      incomplete_.insert(txn);
      if (access.action == OpAction::kWrite) last_writer_[access.item] = txn;
    }
  }
  // Stall handling: feed the blocker set of a waiting transaction into the
  // incremental waits-for graph (diffed — an unchanged wait is free), so
  // the policy's deadlock state is maintained online instead of re-derived
  // per stall tick.
  if (decision == SchedulerDecision::kWait) {
    ++wait_events_;
    waits_.SetWaits(txn, Blockers(txn, script, step));
  } else {
    waits_.ClearWaits(txn);
  }
  return decision;
}

void DelayedReadScheduler::AfterAccess(TxnId txn, const TxnScript& script,
                                       size_t step) {
  inner_.AfterAccess(txn, script, step);
}

void DelayedReadScheduler::OnComplete(TxnId txn) {
  incomplete_.erase(txn);
  waits_.OnResolved(txn);
  inner_.OnComplete(txn);
}

void DelayedReadScheduler::OnAbort(TxnId txn) {
  incomplete_.erase(txn);
  waits_.OnResolved(txn);
  // Remove the aborted transaction's dirty marks; its writes are undone by
  // the restart semantics of the simulator.
  for (auto it = last_writer_.begin(); it != last_writer_.end();) {
    if (it->second == txn) {
      it = last_writer_.erase(it);
    } else {
      ++it;
    }
  }
  inner_.OnAbort(txn);
}

std::vector<TxnId> DelayedReadScheduler::Blockers(TxnId txn,
                                                  const TxnScript& script,
                                                  size_t step) const {
  const AccessStep& access = script.steps[step];
  std::vector<TxnId> blockers = inner_.Blockers(txn, script, step);
  if (access.action == OpAction::kRead) {
    auto dirty = DirtyWriter(access.item);
    if (dirty.has_value() && *dirty != txn) blockers.push_back(*dirty);
  }
  return blockers;
}

}  // namespace nse
