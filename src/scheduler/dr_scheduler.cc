#include "scheduler/dr_scheduler.h"

namespace nse {

std::optional<TxnId> DelayedReadScheduler::DirtyWriter(ItemId item) const {
  auto it = last_writer_.find(item);
  if (it == last_writer_.end()) return std::nullopt;
  if (incomplete_.count(it->second) == 0) return std::nullopt;
  return it->second;
}

Result<AccessGrant> DelayedReadScheduler::RequestAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  // Commit-gate waits rendezvous on *this* hub (the gate opens at
  // Commit/Abort, which Pokes it); lock waits ride the inner grant's
  // ticket on the inner hub.
  WaitTicket gate_ticket = MakeTicket();
  const AccessStep& access = script.steps[step];
  std::lock_guard<std::mutex> lock(mu_);
  if (access.action == OpAction::kRead) {
    std::optional<TxnId> dirty = DirtyWriter(access.item);
    if (dirty.has_value() && *dirty != txn) {
      ++wait_events_;
      waits_.SetWaits(txn, BlockersLocked(txn, script, step));
      return WaitOn(gate_ticket);
    }
  }
  NSE_ASSIGN_OR_RETURN(AccessGrant grant,
                       inner_.RequestAccess(txn, script, step));
  if (grant.verdict == AccessVerdict::kGranted) {
    incomplete_.insert(txn);
    if (access.action == OpAction::kWrite) last_writer_[access.item] = txn;
    waits_.ClearWaits(txn);
  } else {
    ++wait_events_;
    waits_.SetWaits(txn, BlockersLocked(txn, script, step));
  }
  // Pass the inner grant through verbatim: its seq (kGranted) keeps the
  // stack's single trace stream, its ticket (kWait) points at the inner
  // hub where the lock release will be announced.
  return grant;
}

void DelayedReadScheduler::DoCommit(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    incomplete_.erase(txn);
    waits_.OnResolved(txn);
  }
  inner_.Commit(txn);
}

void DelayedReadScheduler::DoAbort(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    incomplete_.erase(txn);
    waits_.OnResolved(txn);
    // Remove the aborted transaction's dirty marks; its writes are undone
    // by the driver's restart semantics.
    for (auto it = last_writer_.begin(); it != last_writer_.end();) {
      if (it->second == txn) {
        it = last_writer_.erase(it);
      } else {
        ++it;
      }
    }
  }
  inner_.Abort(txn);
}

std::vector<TxnId> DelayedReadScheduler::BlockersLocked(
    TxnId txn, const TxnScript& script, size_t step) const {
  const AccessStep& access = script.steps[step];
  std::vector<TxnId> blockers = inner_.Blockers(txn, script, step);
  if (access.action == OpAction::kRead) {
    auto dirty = DirtyWriter(access.item);
    if (dirty.has_value() && *dirty != txn) blockers.push_back(*dirty);
  }
  return blockers;
}

std::vector<TxnId> DelayedReadScheduler::Blockers(TxnId txn,
                                                  const TxnScript& script,
                                                  size_t step) const {
  if (step >= script.steps.size()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  return BlockersLocked(txn, script, step);
}

}  // namespace nse
