// Snapshot isolation over a VersionStore whose chains are stamped by
// *commit* time. A transaction draws its snapshot at first access (the
// commit clock's current value) and every read is served the newest
// version committed at or below that snapshot — reads never wait, never
// abort, and never see an uncommitted version, so read-only transactions
// always commit untouched (the writers-never-block-readers half of the
// MVCC bargain). Writes are buffered in a policy-side write set and only
// installed, under one fresh commit stamp, when the transaction commits.
//
// Lost updates are ruled out first-updater-wins, the industrial
// realization of first-committer-wins validation (the thread-safe
// contract's DoCommit is infallible, so validation lives at the write
// grant instead of commit): a write finding another *active* write-set
// holder waits it out; a write finding a version committed after its own
// snapshot aborts and restarts with a fresh snapshot. Once a write is
// granted, no concurrent transaction can commit a competing version of
// that item, so the commit-time write set is validated by construction.
// Write-write waits can form cycles; the drivers' deadlock detectors
// break them (victims are writers — never read-only transactions).
//
// SI is deliberately weaker than serializable: write skew is admitted.
// Its promised class in the differential harnesses is therefore
// conditional — MVSR exactly on workloads the VKN robustness test
// certifies (analysis/robustness.h); on uncertified workloads only the
// structural SI guarantees are pinned.

#ifndef NSE_SCHEDULER_SNAPSHOT_ISOLATION_H_
#define NSE_SCHEDULER_SNAPSHOT_ISOLATION_H_

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scheduler/scheduler.h"
#include "state/version_store.h"

namespace nse {

class SnapshotIsolationPolicy : public SchedulerPolicy {
 public:
  /// A policy for transaction ids [1, num_txns].
  explicit SnapshotIsolationPolicy(size_t num_txns);

  std::string name() const override { return "snapshot-isolation"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;

  /// A blocked write's only blocker: the active write-set holder.
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// Writes aborted by first-committer-wins validation (a concurrent
  /// transaction committed the item past this snapshot).
  uint64_t validation_aborts() const;
  /// Writes that waited out another active write-set holder.
  uint64_t write_write_waits() const;
  /// Transactions holding a snapshot — 0 at quiescence.
  size_t active_snapshots() const;
  /// Buffered (uncommitted) write-set entries — 0 at quiescence.
  size_t pending_writes() const;
  /// Items claimed by an active write set — 0 at quiescence.
  size_t held_write_claims() const;
  /// The version plane, for residual-state assertions.
  const VersionStore& store() const { return store_; }

 protected:
  void DoCommit(TxnId txn) override;
  void DoAbort(TxnId txn) override;

 private:
  struct PendingWrite {
    ItemId item = 0;
    int64_t value = 0;
  };

  /// Caller holds mu_.
  uint64_t EnsureSnapshot(TxnId txn);
  /// Oldest active snapshot, or the commit clock when nothing is active —
  /// the truncation watermark. Caller holds mu_.
  uint64_t OldestActiveSnapshot() const;
  /// Retract `txn`'s claims and buffered writes. Caller holds mu_.
  void ReleaseWriteSet(TxnId txn);

  mutable std::mutex mu_;
  VersionStore store_;
  uint64_t commit_clock_ = 0;
  std::vector<std::optional<uint64_t>> snapshot_;
  std::vector<std::vector<PendingWrite>> writes_;
  /// item -> active holder: the first-updater claim table.
  std::unordered_map<ItemId, TxnId> write_claims_;
  uint64_t validation_aborts_ = 0;
  uint64_t write_write_waits_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_SNAPSHOT_ISOLATION_H_
