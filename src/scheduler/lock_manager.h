// Item-granularity lock manager with shared/exclusive modes, lock upgrade,
// and blocker reporting for waits-for deadlock detection.
//
// Internally synchronized and striped: items hash to one of kStripes
// independently latched lock tables, so disjoint-footprint transactions on
// different engine workers never contend on a common mutex. Grant decisions
// are immediate (no internal queueing); callers that receive false block on
// the policy's WaitHub (engine) or poll (tick simulator).

#ifndef NSE_SCHEDULER_LOCK_MANAGER_H_
#define NSE_SCHEDULER_LOCK_MANAGER_H_

#include <array>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "state/database.h"
#include "txn/operation.h"

namespace nse {

/// Lock modes.
enum class LockMode { kShared, kExclusive };

/// Tracks which transaction holds which lock. Thread-safe; at most one
/// stripe latch is ever held at a time, so the manager cannot participate
/// in a latch deadlock whatever order callers touch items in.
class LockManager {
 public:
  /// Attempts to acquire `item` in `mode` for `txn`. Re-entrant: holding X
  /// satisfies an S request; holding S upgrades to X when `txn` is the sole
  /// holder. Returns true iff granted.
  bool TryAcquire(TxnId txn, ItemId item, LockMode mode);

  /// Transactions currently preventing the grant (empty iff TryAcquire
  /// would succeed at the instant of the call).
  std::vector<TxnId> Blockers(TxnId txn, ItemId item, LockMode mode) const;

  /// Releases `txn`'s lock on `item` (no-op if not held).
  void Release(TxnId txn, ItemId item);

  /// Releases every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// Releases `txn`'s locks on all items of `d`.
  void ReleaseAllIn(TxnId txn, const DataSet& d);

  /// True iff `txn` holds a lock on `item` at least as strong as `mode`.
  bool Holds(TxnId txn, ItemId item, LockMode mode) const;

  /// Number of (txn, item) lock grants outstanding. Stripe counts are
  /// summed one latch at a time; exact at quiescence.
  size_t num_locks() const;

 private:
  struct ItemLock {
    std::set<TxnId> shared;
    TxnId exclusive = 0;
    bool has_exclusive = false;
  };

  static constexpr size_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mu;
    std::map<ItemId, ItemLock> locks;
  };

  Stripe& StripeFor(ItemId item) { return stripes_[item % kStripes]; }
  const Stripe& StripeFor(ItemId item) const {
    return stripes_[item % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_LOCK_MANAGER_H_
