// Item-granularity lock manager with shared/exclusive modes, lock upgrade,
// and blocker reporting for waits-for deadlock detection.

#ifndef NSE_SCHEDULER_LOCK_MANAGER_H_
#define NSE_SCHEDULER_LOCK_MANAGER_H_

#include <map>
#include <set>
#include <vector>

#include "state/database.h"
#include "txn/operation.h"

namespace nse {

/// Lock modes.
enum class LockMode { kShared, kExclusive };

/// Tracks which transaction holds which lock. Grant decisions are immediate
/// (no internal queueing); callers poll, which matches the tick-based
/// simulator.
class LockManager {
 public:
  /// Attempts to acquire `item` in `mode` for `txn`. Re-entrant: holding X
  /// satisfies an S request; holding S upgrades to X when `txn` is the sole
  /// holder. Returns true iff granted.
  bool TryAcquire(TxnId txn, ItemId item, LockMode mode);

  /// Transactions currently preventing the grant (empty iff TryAcquire
  /// would succeed).
  std::vector<TxnId> Blockers(TxnId txn, ItemId item, LockMode mode) const;

  /// Releases `txn`'s lock on `item` (no-op if not held).
  void Release(TxnId txn, ItemId item);

  /// Releases every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// Releases `txn`'s locks on all items of `d`.
  void ReleaseAllIn(TxnId txn, const DataSet& d);

  /// True iff `txn` holds a lock on `item` at least as strong as `mode`.
  bool Holds(TxnId txn, ItemId item, LockMode mode) const;

  /// Number of (txn, item) lock grants outstanding.
  size_t num_locks() const;

 private:
  struct ItemLock {
    std::set<TxnId> shared;
    TxnId exclusive = 0;
    bool has_exclusive = false;
  };

  std::map<ItemId, ItemLock> locks_;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_LOCK_MANAGER_H_
