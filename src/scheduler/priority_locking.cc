#include "scheduler/priority_locking.h"

#include <utility>

#include "common/logging.h"

namespace nse {

PriorityLockingPolicy::PriorityLockingPolicy(size_t num_txns)
    : stamp_(num_txns + 1) {}

uint64_t PriorityLockingPolicy::EnsureStamp(TxnId txn) {
  if (!stamp_[txn].has_value()) stamp_[txn] = ++clock_;
  return *stamp_[txn];
}

uint64_t PriorityLockingPolicy::StampOf(TxnId txn) const {
  NSE_CHECK_MSG(stamp_[txn].has_value(),
                "lock holder %u without a priority stamp", txn);
  return *stamp_[txn];
}

SchedulerDecision PriorityLockingPolicy::OnAccess(TxnId txn,
                                                  const TxnScript& script,
                                                  size_t step) {
  const uint64_t ts = EnsureStamp(txn);
  const AccessStep& access = script.steps[step];
  const LockMode mode =
      access.action == OpAction::kWrite ? LockMode::kExclusive
                                        : LockMode::kShared;
  if (locks_.TryAcquire(txn, access.item, mode)) {
    return SchedulerDecision::kProceed;
  }
  std::vector<TxnId> holders = locks_.Blockers(txn, access.item, mode);
  NSE_CHECK_MSG(!holders.empty(), "lock denied with no blocking holder");
  return OnConflict(txn, ts, holders);
}

void PriorityLockingPolicy::AfterAccess(TxnId, const TxnScript&, size_t) {
  // Strict locking: nothing releases before completion.
}

void PriorityLockingPolicy::OnComplete(TxnId txn) { locks_.ReleaseAll(txn); }

void PriorityLockingPolicy::OnAbort(TxnId txn) {
  // Wound or death: drop the locks but *keep* the stamp — the restarted
  // incarnation inherits its age, which is what rules out starvation.
  locks_.ReleaseAll(txn);
}

std::vector<TxnId> PriorityLockingPolicy::Blockers(TxnId txn,
                                                   const TxnScript& script,
                                                   size_t step) const {
  const AccessStep& access = script.steps[step];
  const LockMode mode =
      access.action == OpAction::kWrite ? LockMode::kExclusive
                                        : LockMode::kShared;
  return locks_.Blockers(txn, access.item, mode);
}

std::vector<TxnId> PriorityLockingPolicy::DrainWounds() {
  return std::exchange(pending_wounds_, {});
}

std::optional<uint64_t> PriorityLockingPolicy::priority(TxnId txn) const {
  return txn < stamp_.size() ? stamp_[txn] : std::nullopt;
}

SchedulerDecision WoundWaitPolicy::OnConflict(
    TxnId, uint64_t ts, const std::vector<TxnId>& holders) {
  // Wound every younger holder in the way; wait for the rest. After the
  // simulator drains the wounds, the surviving blockers are all older, so
  // every standing wait points young -> old — acyclic by the total
  // priority order.
  for (TxnId holder : holders) {
    if (StampOf(holder) > ts) {
      pending_wounds_.push_back(holder);
      ++wounds_issued_;
    }
  }
  return SchedulerDecision::kWait;
}

SchedulerDecision WaitDiePolicy::OnConflict(TxnId, uint64_t ts,
                                            const std::vector<TxnId>& holders) {
  // Wait only when older than every conflicting holder (waits point
  // old -> young, acyclic); otherwise die and retry under the original
  // stamp.
  for (TxnId holder : holders) {
    if (StampOf(holder) < ts) {
      ++deaths_;
      return SchedulerDecision::kAbortRestart;
    }
  }
  return SchedulerDecision::kWait;
}

}  // namespace nse
