#include "scheduler/priority_locking.h"

#include <utility>

#include "common/logging.h"

namespace nse {

PriorityLockingPolicy::PriorityLockingPolicy(size_t num_txns)
    : stamp_(num_txns + 1) {}

uint64_t PriorityLockingPolicy::EnsureStamp(TxnId txn) {
  if (!stamp_[txn].has_value()) stamp_[txn] = ++clock_;
  return *stamp_[txn];
}

uint64_t PriorityLockingPolicy::StampOf(TxnId txn) const {
  NSE_CHECK_MSG(stamp_[txn].has_value(),
                "lock holder %u without a priority stamp", txn);
  return *stamp_[txn];
}

Result<AccessGrant> PriorityLockingPolicy::RequestAccess(
    TxnId txn, const TxnScript& script, size_t step) {
  NSE_RETURN_IF_ERROR(CheckStep(script, step));
  WaitTicket ticket = MakeTicket();
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ts = EnsureStamp(txn);
  const AccessStep& access = script.steps[step];
  const LockMode mode =
      access.action == OpAction::kWrite ? LockMode::kExclusive
                                        : LockMode::kShared;
  if (locks_.TryAcquire(txn, access.item, mode)) {
    return Granted();
  }
  // The mutex keeps releases out of this window: the holders we compare
  // stamps against are exactly the holders that denied the grant.
  std::vector<TxnId> holders = locks_.Blockers(txn, access.item, mode);
  NSE_CHECK_MSG(!holders.empty(), "lock denied with no blocking holder");
  AccessVerdict verdict = OnConflict(txn, ts, holders);
  if (verdict == AccessVerdict::kWait) return WaitOn(ticket);
  return AbortSelf();
}

void PriorityLockingPolicy::DoCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  locks_.ReleaseAll(txn);
}

void PriorityLockingPolicy::DoAbort(TxnId txn) {
  // Wound or death: drop the locks but *keep* the stamp — the restarted
  // incarnation inherits its age, which is what rules out starvation.
  std::lock_guard<std::mutex> lock(mu_);
  locks_.ReleaseAll(txn);
}

std::vector<TxnId> PriorityLockingPolicy::Blockers(TxnId txn,
                                                   const TxnScript& script,
                                                   size_t step) const {
  if (step >= script.steps.size()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  const AccessStep& access = script.steps[step];
  const LockMode mode =
      access.action == OpAction::kWrite ? LockMode::kExclusive
                                        : LockMode::kShared;
  return locks_.Blockers(txn, access.item, mode);
}

std::optional<uint64_t> PriorityLockingPolicy::priority(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn < stamp_.size() ? stamp_[txn] : std::nullopt;
}

AccessVerdict WoundWaitPolicy::OnConflict(TxnId, uint64_t ts,
                                          const std::vector<TxnId>& holders) {
  // Wound every younger holder in the way; wait for the rest. After the
  // driver drains the wounds, the surviving blockers are all older, so
  // every standing wait points young -> old — acyclic by the total
  // priority order.
  for (TxnId holder : holders) {
    if (StampOf(holder) > ts) {
      Condemn(holder);
      ++wounds_issued_;
    }
  }
  return AccessVerdict::kWait;
}

AccessVerdict WaitDiePolicy::OnConflict(TxnId, uint64_t ts,
                                        const std::vector<TxnId>& holders) {
  // Wait only when older than every conflicting holder (waits point
  // old -> young, acyclic); otherwise die and retry under the original
  // stamp.
  for (TxnId holder : holders) {
    if (StampOf(holder) < ts) {
      ++deaths_;
      return AccessVerdict::kAbortSelf;
    }
  }
  return AccessVerdict::kWait;
}

}  // namespace nse
