#include "scheduler/sim.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "scheduler/fault_injection.h"
#include "scheduler/waits_for.h"

namespace nse {

namespace {

struct TxnRuntime {
  size_t pc = 0;          // next step index
  bool done = false;
  bool admitted = false;  // passed the admission gate
  bool crashed = false;   // terminal crash-at-op fault fired
  bool was_shed = false;  // dropped by the admission gate
  bool blocked = false;   // last OnAccess returned kWait
  bool boosted = false;   // starvation watchdog fired
  bool parked = false;    // boosted but waiting for the privileged one
  uint64_t wait_ticks = 0;
  uint64_t completion_tick = 0;
  uint64_t resume_tick = 0;  // abort backoff / latency spike: idle until then
  uint64_t abort_count = 0;  // restarts of any kind (= incarnation index)
  uint64_t fault_aborts = 0;  // injected client aborts (capped by the plan)
  uint64_t arrival = 0;       // effective (possibly perturbed) arrival tick
  size_t spike_paid_pc = SIZE_MAX;  // last step latency-checked this life
  uint64_t skips_this_life = 0;  // kSkip verdicts of the current incarnation
};

/// One traced operation plus its version annotation (reads under a
/// multiversion policy: the writer of the observed version). Kept fused so
/// the restart path's erase keeps trace and annotations aligned.
struct TracedOp {
  Operation op;
  std::optional<TxnId> read_from;
};

}  // namespace

Result<SimResult> RunSimulation(SchedulerPolicy& policy,
                                const std::vector<TxnScript>& scripts,
                                const EngineConfig& config) {
  NSE_RETURN_IF_ERROR(config.Validate());
  const size_t n = scripts.size();
  const RestartPolicy& rp = config.restart;
  const FaultPlan* faults =
      (config.faults != nullptr && !config.faults->empty()) ? config.faults
                                                            : nullptr;
  std::vector<TxnRuntime> runtime(n);
  // Terminal crash step per txn (SIZE_MAX = never), drawn once up front.
  std::vector<size_t> crash_step(n, SIZE_MAX);
  for (size_t i = 0; i < n; ++i) {
    TxnId txn = static_cast<TxnId>(i + 1);
    runtime[i].arrival = scripts[i].arrival_tick;
    if (faults != nullptr) {
      runtime[i].arrival =
          faults->PerturbedArrival(txn, scripts[i].arrival_tick);
      auto crash = faults->CrashStep(txn, scripts[i].steps.size());
      if (crash.has_value()) crash_step[i] = *crash;
    }
  }
  // Admission order: (effective arrival, id) — deterministic whatever the
  // perturbation did to the scripted order.
  std::vector<size_t> admission_order(n);
  std::iota(admission_order.begin(), admission_order.end(), size_t{0});
  std::stable_sort(admission_order.begin(), admission_order.end(),
                   [&](size_t a, size_t b) {
                     return runtime[a].arrival < runtime[b].arrival;
                   });
  size_t live_txns = 0;

  std::vector<TracedOp> trace;
  SimResult result;
  // Persistent waits-for graph across stall ticks: each tick only diffs the
  // blocker sets against the previous tick (usually unchanged), instead of
  // rebuilding a graph and running a DFS per tick.
  WaitsForTracker waits;
  waits.EnsureTxns(n);

  auto all_done = [&]() {
    for (const auto& rt : runtime) {
      if (!rt.done) return false;
    }
    return true;
  };

  uint64_t tick = 0;
  uint64_t stalled_ticks = 0;  // consecutive blocked-but-no-victim ticks
  Status failure = Status::Ok();  // malformed-request error from a policy
  bool progress = false;
  bool pending_arrival = false;   // not yet arrived, or in backoff/spike
  bool pending_backoff = false;   // in deliberate backoff or latency spike
  bool pending_admission = false;  // arrived but queued at the gate

  // Drop `victim`'s footprint: policy retraction, waits-for edges, trace
  // ops. Shared by restart (abort) and terminal crash; second calls for the
  // same txn are harmless — the policies' OnAbort paths are idempotent.
  auto release_txn = [&](TxnId victim) {
    policy.Abort(victim);
    waits.OnResolved(victim);
    trace.erase(std::remove_if(trace.begin(), trace.end(),
                               [victim](const TracedOp& traced) {
                                 return traced.op.txn == victim;
                               }),
                trace.end());
    runtime[victim - 1].blocked = false;
  };

  // The transaction currently holding the watchdog's escalation privilege:
  // the lowest-id boosted, unfinished transaction (0 if none). Only it gets
  // zero backoff and the front of the scan — two simultaneously free-to-
  // restart transactions can re-abort each other forever (seen with TO:
  // each zero-cost restart draws a fresh stamp that re-rejects the other),
  // so escalations are strictly serialized.
  auto privileged_boosted = [&]() -> TxnId {
    for (size_t i = 0; i < n; ++i) {
      if (runtime[i].boosted && !runtime[i].done) {
        return static_cast<TxnId>(i + 1);
      }
    }
    return 0;
  };

  // Wake every parked transaction (called when a boosted transaction
  // finishes and the privilege transfers).
  auto wake_parked = [&]() {
    for (size_t i = 0; i < n; ++i) {
      if (runtime[i].parked && !runtime[i].done) {
        runtime[i].parked = false;
        runtime[i].resume_tick = tick + 1;
      }
    }
  };

  // Abort `victim` and schedule its restart under the RestartPolicy: undo
  // its trace, rewind, and back off so the surviving transactions drain
  // before it re-enters (otherwise the same conflict can re-form forever).
  // Shared by the deadlock-victim path, policy-requested kAbortRestart
  // verdicts, wounds, and injected client aborts.
  auto restart_txn = [&](TxnId victim) {
    release_txn(victim);
    TxnRuntime& vrt = runtime[victim - 1];
    vrt.pc = 0;
    vrt.spike_paid_pc = SIZE_MAX;
    vrt.skips_this_life = 0;
    ++vrt.abort_count;
    result.max_txn_restarts = std::max(result.max_txn_restarts,
                                       vrt.abort_count);
    if (!vrt.boosted && rp.max_restarts_before_boost > 0 &&
        vrt.abort_count > rp.max_restarts_before_boost) {
      // Starvation watchdog: past the cap the transaction is escalated
      // instead of livelocking through delays it always loses.
      vrt.boosted = true;
      ++result.boosts;
    }
    if (vrt.boosted) {
      if (privileged_boosted() == victim) {
        // Free restart + front-of-scan priority: it keeps retrying at full
        // cadence while every other chronic restarter is parked or paying
        // backoff, so it eventually runs unopposed and commits.
        vrt.parked = false;
        vrt.resume_tick = tick + 1;
      } else {
        // Parked until the privileged transaction finishes: a chronically
        // colliding peer leaves the arena entirely (it holds no footprint
        // after the abort), which is what guarantees the privileged one
        // stops meeting fresh conflicts from it.
        vrt.parked = true;
        vrt.resume_tick = UINT64_MAX;
      }
      return;
    }
    uint64_t delay = RestartBackoffDelay(rp, victim, vrt.abort_count);
    result.backoff_ticks += delay;
    vrt.resume_tick = tick + std::max<uint64_t>(delay, 1);
  };

  // Terminal crash: same footprint retraction as an abort, but the
  // transaction never restarts — exactly what leaves residual state behind
  // if any policy's OnAbort/Erase/RemoveEdgesOf path is leaky.
  auto crash_txn = [&](TxnId victim) {
    release_txn(victim);
    TxnRuntime& vrt = runtime[victim - 1];
    vrt.done = true;
    vrt.crashed = true;
    ++result.crashes;
    --live_txns;
    if (vrt.boosted) wake_parked();  // the privilege transfers
  };

  // One transaction's turn within a tick. Returns nothing; sets the
  // progress/pending flags.
  auto attempt = [&](size_t i) {
    TxnRuntime& rt = runtime[i];
    const TxnScript& script = scripts[i];
    TxnId txn = static_cast<TxnId>(i + 1);
    if (rt.done) return;
    if (!rt.admitted) {
      pending_admission = true;
      return;
    }
    if (rt.resume_tick > tick) {
      pending_arrival = true;
      pending_backoff = true;
      return;
    }
    if (script.steps.empty()) {
      policy.Commit(txn);
      waits.OnResolved(txn);
      rt.done = true;
      rt.completion_tick = tick;
      --live_txns;
      ++result.completed;
      if (rt.boosted) wake_parked();
      progress = true;
      return;
    }
    if (faults != nullptr) {
      if (rt.pc == crash_step[i]) {
        crash_txn(txn);
        progress = true;
        return;
      }
      if (faults->ClientAbortsAt(txn, rt.abort_count, rt.pc,
                                 script.steps.size(), rt.fault_aborts)) {
        ++rt.fault_aborts;
        ++result.fault_aborts;
        restart_txn(txn);
        progress = true;
        return;
      }
      if (rt.spike_paid_pc != rt.pc) {
        rt.spike_paid_pc = rt.pc;
        uint64_t spike = faults->LatencySpikeAt(txn, rt.abort_count, rt.pc);
        if (spike > 0) {
          result.latency_spike_ticks += spike;
          rt.resume_tick = tick + spike;
          rt.blocked = false;
          pending_arrival = true;
          pending_backoff = true;
          return;
        }
      }
    }
    Result<AccessGrant> grant = policy.RequestAccess(txn, script, rt.pc);
    if (!grant.ok()) {
      // Malformed request — a driver bug, not a scheduling outcome.
      failure = grant.status();
      return;
    }
    // Wound path: the policy may have condemned *other* transactions
    // while deciding this access (wound-wait, SGT victim choice). Roll
    // them back through the shared restart path before acting on the
    // requester's own verdict — a wound releases the victim's footprint
    // (locks, graph edges), which is exactly what unblocks the requester
    // on its next attempt.
    for (TxnId victim : policy.DrainCondemned()) {
      NSE_CHECK_MSG(victim != txn,
                    "policy wounded the requester; it must return "
                    "kAbortSelf instead");
      NSE_CHECK_MSG(victim >= 1 && victim <= n && !runtime[victim - 1].done,
                    "policy wounded an inactive transaction");
      restart_txn(victim);
      ++result.wounds;
      progress = true;  // state changed; this is not a stall tick
    }
    if (grant->verdict == AccessVerdict::kWait) {
      rt.blocked = true;
      ++rt.wait_ticks;
      return;
    }
    if (grant->verdict == AccessVerdict::kAbortSelf) {
      // The policy declared waiting hopeless (e.g. an SGT veto against
      // committed edges): roll the transaction back and restart it.
      restart_txn(txn);
      ++result.restarts;
      progress = true;
      return;
    }
    rt.blocked = false;
    if (grant->verdict == AccessVerdict::kSkip) {
      // Thomas write rule: the step is subsumed by a newer write that
      // already executed. The txn advances past it and nothing is traced —
      // the operation never happened.
      ++result.skipped_ops;
      ++rt.skips_this_life;
    } else {
      const AccessStep& step = script.steps[rt.pc];
      // Structural trace values: reads 0, writes the current tick
      // (distinct values keep traces readable; checkers ignore them).
      // A grant carrying a version annotation (multiversion policies)
      // instead traces the observed version's value and remembers its
      // writer for the read_sources sidecar.
      // Any release work for non-strict policies already ran inside
      // RequestAccess (the old AfterAccess hook is fused into the grant).
      if (step.action == OpAction::kRead) {
        if (grant->read_view.has_value()) {
          trace.push_back(TracedOp{
              Operation::Read(txn, step.item, Value(grant->read_view->value)),
              grant->read_view->writer});
        } else {
          trace.push_back(
              TracedOp{Operation::Read(txn, step.item, Value(0)),
                       std::nullopt});
        }
      } else {
        trace.push_back(TracedOp{
            Operation::Write(txn, step.item,
                             Value(static_cast<int64_t>(tick))),
            std::nullopt});
      }
    }
    ++rt.pc;
    progress = true;
    if (rt.pc == script.steps.size()) {
      policy.Commit(txn);
      waits.OnResolved(txn);
      rt.done = true;
      rt.completion_tick = tick;
      --live_txns;
      ++result.completed;
      result.committed_skipped_ops += rt.skips_this_life;
      if (rt.boosted) wake_parked();
    }
  };

  for (; tick < config.max_ticks; ++tick) {
    if (all_done()) break;
    progress = false;
    pending_arrival = false;
    pending_backoff = false;
    pending_admission = false;

    // Admission gate, in (arrival, id) order: every arrived transaction is
    // admitted while the gate has room; with kShed, arrivals that find the
    // gate full are dropped on the spot (graceful degradation — the
    // alternative under overload is unbounded queueing).
    for (size_t i : admission_order) {
      TxnRuntime& rt = runtime[i];
      if (rt.done || rt.admitted || rt.arrival > tick) continue;
      if (rp.max_live_txns == 0 || live_txns < rp.max_live_txns) {
        rt.admitted = true;
        ++live_txns;
      } else if (rp.overflow == RestartPolicy::Overflow::kShed) {
        rt.done = true;
        rt.was_shed = true;
        ++result.shed;
        progress = true;
      }
    }

    for (size_t i = 0; i < n; ++i) {
      // Starvation watchdog: boosted transactions go first, in id order —
      // they stopped paying backoff, and winning the intra-tick race is
      // what converts "restarts forever" into "commits next".
      if (runtime[i].boosted && !runtime[i].done) attempt(i);
    }
    for (size_t k = 0; k < n; ++k) {
      // Rotate the scan origin for fairness while staying deterministic.
      size_t i = (k + static_cast<size_t>(tick)) % n;
      if (runtime[i].boosted) continue;  // already had its boosted turn
      if (!runtime[i].done && runtime[i].arrival > tick) {
        pending_arrival = true;
        continue;
      }
      attempt(i);
    }
    if (!failure.ok()) return failure;

    if (progress) {
      stalled_ticks = 0;
      continue;
    }

    // No transaction moved: look for a deadlock among blocked transactions.
    // The tracker diffs each blocker set against the previous stall tick's,
    // so an unchanged waits-for relation does no graph work and the cycle
    // query is O(1).
    bool any_blocked = false;
    for (size_t i = 0; i < n; ++i) {
      TxnId txn = static_cast<TxnId>(i + 1);
      bool eligible = !runtime[i].done && runtime[i].admitted &&
                      runtime[i].arrival <= tick &&
                      runtime[i].resume_tick <= tick;
      if (eligible && runtime[i].blocked) {
        any_blocked = true;
        waits.SetWaits(txn, policy.Blockers(txn, scripts[i], runtime[i].pc));
      } else {
        waits.ClearWaits(txn);
      }
    }
    if (!any_blocked) {
      if (pending_backoff) {
        // Every idle transaction is in deliberate backoff or a latency
        // spike: a pause, not a stall.
        stalled_ticks = 0;
        continue;
      }
      if (pending_arrival || pending_admission) continue;  // quiet tick
      return Status::Internal("simulation stalled with no blocked txn");
    }
    TxnId victim = 0;
    if (waits.cycle().has_value()) {
      const std::vector<TxnId>& cycle = *waits.cycle();
      victim = *std::max_element(cycle.begin(), cycle.end());
    }
    if (victim == 0) {
      if (pending_backoff) {
        // Blocked transactions, but some participant is in deliberate
        // backoff — its return will either make progress or re-form a
        // detectable cycle. Counting these ticks toward stall_patience
        // would misdiagnose a long exponential backoff as a wedged
        // policy; resetting keeps the counter's "consecutive" meaning.
        stalled_ticks = 0;
        continue;
      }
      if (pending_arrival) continue;  // blockers will arrive and finish
      // Blocked transactions without a waits-for cycle: an optimistic
      // policy resolves this itself (SGT's veto threshold escalates to
      // kAbortRestart), so keep ticking within the patience budget. A
      // non-empty admission queue cannot help here — queued transactions
      // only enter when a live one leaves — so it does not defer the
      // verdict.
      if (++stalled_ticks > config.stall_patience) {
        return Status::Internal(
            "simulation stalled: blocked transactions but no waits-for cycle");
      }
      continue;
    }
    stalled_ticks = 0;
    restart_txn(victim);
    ++result.aborts;
  }

  if (!all_done()) {
    return Status::Internal(
        StrCat("simulation exceeded max_ticks=", config.max_ticks));
  }

  result.makespan = tick;
  result.total_ops = trace.size();
  result.vetoes = policy.veto_events();
  double response_sum = 0;
  uint64_t committed = 0;
  result.txn_restarts.resize(n);
  for (size_t i = 0; i < n; ++i) {
    result.total_wait_ticks += runtime[i].wait_ticks;
    result.txn_restarts[i] = runtime[i].abort_count;
    if (runtime[i].crashed || runtime[i].was_shed) continue;
    response_sum += static_cast<double>(runtime[i].completion_tick + 1 -
                                        runtime[i].arrival);
    ++committed;
  }
  result.avg_response_ticks =
      committed == 0 ? 0 : response_sum / static_cast<double>(committed);
  result.throughput =
      result.makespan == 0
          ? 0
          : static_cast<double>(result.completed) /
                static_cast<double>(result.makespan);
  OpSequence ops;
  ops.reserve(trace.size());
  result.read_sources.reserve(trace.size());
  for (const TracedOp& traced : trace) {
    ops.push_back(traced.op);
    result.read_sources.push_back(traced.read_from);
  }
  result.schedule = Schedule(std::move(ops));
  return result;
}

}  // namespace nse
