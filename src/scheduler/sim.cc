#include "scheduler/sim.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "scheduler/waits_for.h"

namespace nse {

namespace {

struct TxnRuntime {
  size_t pc = 0;          // next step index
  bool done = false;
  bool blocked = false;   // last OnAccess returned kWait
  uint64_t wait_ticks = 0;
  uint64_t completion_tick = 0;
  uint64_t resume_tick = 0;  // abort backoff: idle until this tick
  uint64_t abort_count = 0;
};

}  // namespace

Result<SimResult> RunSimulation(SchedulerPolicy& policy,
                                const std::vector<TxnScript>& scripts,
                                const SimConfig& config) {
  const size_t n = scripts.size();
  std::vector<TxnRuntime> runtime(n);
  OpSequence trace;
  SimResult result;
  // Persistent waits-for graph across stall ticks: each tick only diffs the
  // blocker sets against the previous tick (usually unchanged), instead of
  // rebuilding a graph and running a DFS per tick.
  WaitsForTracker waits;
  waits.EnsureTxns(n);

  auto all_done = [&]() {
    for (const auto& rt : runtime) {
      if (!rt.done) return false;
    }
    return true;
  };

  uint64_t tick = 0;
  uint64_t stalled_ticks = 0;  // consecutive blocked-but-no-victim ticks

  // Abort `victim` and schedule its restart: undo its trace, rewind, and
  // back off so the surviving transactions drain before it re-enters
  // (otherwise the same conflict can re-form forever). Shared by the
  // deadlock-victim path and policy-requested kAbortRestart verdicts.
  auto restart_txn = [&](TxnId victim) {
    policy.OnAbort(victim);
    waits.OnResolved(victim);
    trace.erase(std::remove_if(trace.begin(), trace.end(),
                               [victim](const Operation& op) {
                                 return op.txn == victim;
                               }),
                trace.end());
    TxnRuntime& vrt = runtime[victim - 1];
    vrt.pc = 0;
    vrt.blocked = false;
    ++vrt.abort_count;
    uint64_t backoff = std::min<uint64_t>(2 + 4 * vrt.abort_count, 128);
    vrt.resume_tick = tick + backoff;
  };

  for (; tick < config.max_ticks; ++tick) {
    if (all_done()) break;
    bool progress = false;
    bool pending_arrival = false;

    for (size_t k = 0; k < n; ++k) {
      // Rotate the scan origin for fairness while staying deterministic.
      size_t i = (k + static_cast<size_t>(tick)) % n;
      TxnRuntime& rt = runtime[i];
      const TxnScript& script = scripts[i];
      TxnId txn = static_cast<TxnId>(i + 1);
      if (rt.done) continue;
      if (script.arrival_tick > tick || rt.resume_tick > tick) {
        pending_arrival = true;
        continue;
      }
      if (script.steps.empty()) {
        policy.OnComplete(txn);
        waits.OnResolved(txn);
        rt.done = true;
        rt.completion_tick = tick;
        ++result.completed;
        progress = true;
        continue;
      }
      SchedulerDecision decision = policy.OnAccess(txn, script, rt.pc);
      // Wound path: the policy may have condemned *other* transactions
      // while deciding this access (wound-wait, SGT victim choice). Roll
      // them back through the shared restart path before acting on the
      // requester's own verdict — a wound releases the victim's footprint
      // (locks, graph edges), which is exactly what unblocks the requester
      // on its next attempt.
      for (TxnId victim : policy.DrainWounds()) {
        NSE_CHECK_MSG(victim != txn,
                      "policy wounded the requester; it must return "
                      "kAbortRestart instead");
        NSE_CHECK_MSG(victim >= 1 && victim <= n && !runtime[victim - 1].done,
                      "policy wounded an inactive transaction");
        restart_txn(victim);
        ++result.wounds;
        progress = true;  // state changed; this is not a stall tick
      }
      if (decision == SchedulerDecision::kWait) {
        rt.blocked = true;
        ++rt.wait_ticks;
        continue;
      }
      if (decision == SchedulerDecision::kAbortRestart) {
        // The policy declared waiting hopeless (e.g. an SGT veto against
        // committed edges): roll the transaction back and restart it.
        restart_txn(txn);
        ++result.restarts;
        progress = true;
        continue;
      }
      rt.blocked = false;
      if (decision == SchedulerDecision::kSkip) {
        // Thomas write rule: the step is subsumed by a newer write that
        // already executed. The txn advances past it, nothing is traced
        // and AfterAccess does not run — the operation never happened.
        ++result.skipped_ops;
      } else {
        const AccessStep& step = script.steps[rt.pc];
        // Structural trace values: reads 0, writes the current tick
        // (distinct values keep traces readable; checkers ignore them).
        trace.push_back(step.action == OpAction::kRead
                            ? Operation::Read(txn, step.item, Value(0))
                            : Operation::Write(
                                  txn, step.item,
                                  Value(static_cast<int64_t>(tick))));
        policy.AfterAccess(txn, script, rt.pc);
      }
      ++rt.pc;
      progress = true;
      if (rt.pc == script.steps.size()) {
        policy.OnComplete(txn);
        waits.OnResolved(txn);
        rt.done = true;
        rt.completion_tick = tick;
        ++result.completed;
      }
    }

    if (progress) {
      stalled_ticks = 0;
      continue;
    }

    // No transaction moved: look for a deadlock among blocked transactions.
    // The tracker diffs each blocker set against the previous stall tick's,
    // so an unchanged waits-for relation does no graph work and the cycle
    // query is O(1).
    bool any_blocked = false;
    for (size_t i = 0; i < n; ++i) {
      TxnId txn = static_cast<TxnId>(i + 1);
      bool eligible = !runtime[i].done && scripts[i].arrival_tick <= tick &&
                      runtime[i].resume_tick <= tick;
      if (eligible && runtime[i].blocked) {
        any_blocked = true;
        waits.SetWaits(txn, policy.Blockers(txn, scripts[i], runtime[i].pc));
      } else {
        waits.ClearWaits(txn);
      }
    }
    if (!any_blocked) {
      if (pending_arrival) continue;  // quiet tick before arrivals
      return Status::Internal("simulation stalled with no blocked txn");
    }
    TxnId victim = 0;
    if (waits.cycle().has_value()) {
      const std::vector<TxnId>& cycle = *waits.cycle();
      victim = *std::max_element(cycle.begin(), cycle.end());
    }
    if (victim == 0) {
      if (pending_arrival) continue;  // blockers will arrive and finish
      // Blocked transactions without a waits-for cycle: an optimistic
      // policy resolves this itself (SGT's veto threshold escalates to
      // kAbortRestart), so keep ticking within the patience budget.
      if (++stalled_ticks > config.stall_patience) {
        return Status::Internal(
            "simulation stalled: blocked transactions but no waits-for cycle");
      }
      continue;
    }
    stalled_ticks = 0;
    restart_txn(victim);
    ++result.aborts;
  }

  if (!all_done()) {
    return Status::Internal(
        StrCat("simulation exceeded max_ticks=", config.max_ticks));
  }

  result.makespan = tick;
  result.total_ops = trace.size();
  result.vetoes = policy.veto_events();
  double response_sum = 0;
  for (size_t i = 0; i < n; ++i) {
    result.total_wait_ticks += runtime[i].wait_ticks;
    response_sum += static_cast<double>(runtime[i].completion_tick + 1 -
                                        scripts[i].arrival_tick);
  }
  result.avg_response_ticks = n == 0 ? 0 : response_sum / static_cast<double>(n);
  result.throughput =
      result.makespan == 0
          ? 0
          : static_cast<double>(result.completed) /
                static_cast<double>(result.makespan);
  result.schedule = Schedule(std::move(trace));
  return result;
}

}  // namespace nse
