// Strict two-phase locking: the classical serializable baseline. All locks
// are held until transaction completion, so every produced schedule is CSR
// (and strict, hence ACA and DR). This is the protocol whose long-duration
// waits motivate the paper (§1).
//
// Thread-safety comes entirely from the striped LockManager: the policy
// itself holds no mutable state of its own, so concurrent requesters on
// disjoint items proceed without any shared latch.

#ifndef NSE_SCHEDULER_TWO_PHASE_LOCKING_H_
#define NSE_SCHEDULER_TWO_PHASE_LOCKING_H_

#include "scheduler/lock_manager.h"
#include "scheduler/scheduler.h"

namespace nse {

/// Strict 2PL policy.
class StrictTwoPhaseLocking : public SchedulerPolicy {
 public:
  std::string name() const override { return "strict-2pl"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// Outstanding lock grants — 0 at quiescence, or the policy leaked
  /// (the chaos harness's residual-state check).
  size_t held_locks() const { return locks_.num_locks(); }

 protected:
  void DoCommit(TxnId txn) override { locks_.ReleaseAll(txn); }
  void DoAbort(TxnId txn) override { locks_.ReleaseAll(txn); }

 private:
  LockManager locks_;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_TWO_PHASE_LOCKING_H_
