#include "scheduler/lock_manager.h"

namespace nse {

bool LockManager::TryAcquire(TxnId txn, ItemId item, LockMode mode) {
  Stripe& stripe = StripeFor(item);
  std::lock_guard<std::mutex> guard(stripe.mu);
  ItemLock& lock = stripe.locks[item];
  if (mode == LockMode::kShared) {
    if (lock.has_exclusive) return lock.exclusive == txn;
    lock.shared.insert(txn);
    return true;
  }
  // Exclusive request.
  if (lock.has_exclusive) return lock.exclusive == txn;
  if (lock.shared.empty() ||
      (lock.shared.size() == 1 && lock.shared.count(txn) == 1)) {
    lock.shared.erase(txn);
    lock.has_exclusive = true;
    lock.exclusive = txn;
    return true;
  }
  return false;
}

std::vector<TxnId> LockManager::Blockers(TxnId txn, ItemId item,
                                         LockMode mode) const {
  std::vector<TxnId> out;
  const Stripe& stripe = StripeFor(item);
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.locks.find(item);
  if (it == stripe.locks.end()) return out;
  const ItemLock& lock = it->second;
  if (mode == LockMode::kShared) {
    if (lock.has_exclusive && lock.exclusive != txn) {
      out.push_back(lock.exclusive);
    }
    return out;
  }
  if (lock.has_exclusive) {
    if (lock.exclusive != txn) out.push_back(lock.exclusive);
    return out;
  }
  for (TxnId holder : lock.shared) {
    if (holder != txn) out.push_back(holder);
  }
  return out;
}

void LockManager::Release(TxnId txn, ItemId item) {
  Stripe& stripe = StripeFor(item);
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.locks.find(item);
  if (it == stripe.locks.end()) return;
  ItemLock& lock = it->second;
  lock.shared.erase(txn);
  if (lock.has_exclusive && lock.exclusive == txn) {
    lock.has_exclusive = false;
    lock.exclusive = 0;
  }
  if (!lock.has_exclusive && lock.shared.empty()) stripe.locks.erase(it);
}

void LockManager::ReleaseAll(TxnId txn) {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    for (auto it = stripe.locks.begin(); it != stripe.locks.end();) {
      ItemLock& lock = it->second;
      lock.shared.erase(txn);
      if (lock.has_exclusive && lock.exclusive == txn) {
        lock.has_exclusive = false;
        lock.exclusive = 0;
      }
      if (!lock.has_exclusive && lock.shared.empty()) {
        it = stripe.locks.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void LockManager::ReleaseAllIn(TxnId txn, const DataSet& d) {
  for (ItemId item : d) Release(txn, item);
}

bool LockManager::Holds(TxnId txn, ItemId item, LockMode mode) const {
  const Stripe& stripe = StripeFor(item);
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.locks.find(item);
  if (it == stripe.locks.end()) return false;
  const ItemLock& lock = it->second;
  if (lock.has_exclusive && lock.exclusive == txn) return true;
  if (mode == LockMode::kShared) return lock.shared.count(txn) == 1;
  return false;
}

size_t LockManager::num_locks() const {
  size_t n = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    for (const auto& [item, lock] : stripe.locks) {
      n += lock.shared.size() + (lock.has_exclusive ? 1 : 0);
    }
  }
  return n;
}

}  // namespace nse
