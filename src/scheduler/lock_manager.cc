#include "scheduler/lock_manager.h"

namespace nse {

bool LockManager::TryAcquire(TxnId txn, ItemId item, LockMode mode) {
  ItemLock& lock = locks_[item];
  if (mode == LockMode::kShared) {
    if (lock.has_exclusive) return lock.exclusive == txn;
    lock.shared.insert(txn);
    return true;
  }
  // Exclusive request.
  if (lock.has_exclusive) return lock.exclusive == txn;
  if (lock.shared.empty() ||
      (lock.shared.size() == 1 && lock.shared.count(txn) == 1)) {
    lock.shared.erase(txn);
    lock.has_exclusive = true;
    lock.exclusive = txn;
    return true;
  }
  return false;
}

std::vector<TxnId> LockManager::Blockers(TxnId txn, ItemId item,
                                         LockMode mode) const {
  std::vector<TxnId> out;
  auto it = locks_.find(item);
  if (it == locks_.end()) return out;
  const ItemLock& lock = it->second;
  if (mode == LockMode::kShared) {
    if (lock.has_exclusive && lock.exclusive != txn) {
      out.push_back(lock.exclusive);
    }
    return out;
  }
  if (lock.has_exclusive) {
    if (lock.exclusive != txn) out.push_back(lock.exclusive);
    return out;
  }
  for (TxnId holder : lock.shared) {
    if (holder != txn) out.push_back(holder);
  }
  return out;
}

void LockManager::Release(TxnId txn, ItemId item) {
  auto it = locks_.find(item);
  if (it == locks_.end()) return;
  ItemLock& lock = it->second;
  lock.shared.erase(txn);
  if (lock.has_exclusive && lock.exclusive == txn) {
    lock.has_exclusive = false;
    lock.exclusive = 0;
  }
  if (!lock.has_exclusive && lock.shared.empty()) locks_.erase(it);
}

void LockManager::ReleaseAll(TxnId txn) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    ItemLock& lock = it->second;
    lock.shared.erase(txn);
    if (lock.has_exclusive && lock.exclusive == txn) {
      lock.has_exclusive = false;
      lock.exclusive = 0;
    }
    if (!lock.has_exclusive && lock.shared.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void LockManager::ReleaseAllIn(TxnId txn, const DataSet& d) {
  for (ItemId item : d) Release(txn, item);
}

bool LockManager::Holds(TxnId txn, ItemId item, LockMode mode) const {
  auto it = locks_.find(item);
  if (it == locks_.end()) return false;
  const ItemLock& lock = it->second;
  if (lock.has_exclusive && lock.exclusive == txn) return true;
  if (mode == LockMode::kShared) return lock.shared.count(txn) == 1;
  return false;
}

size_t LockManager::num_locks() const {
  size_t n = 0;
  for (const auto& [item, lock] : locks_) {
    n += lock.shared.size() + (lock.has_exclusive ? 1 : 0);
  }
  return n;
}

}  // namespace nse
