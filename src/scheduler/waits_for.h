// Online waits-for tracking for the scheduler layer. The simulator (and any
// policy that wants to see its own wait cycles, e.g. the delayed-read
// scheduler) repeatedly asks "did this new wait close a cycle?" — formerly
// answered by rebuilding a ConflictGraph and running a full DFS on every
// stall tick. The tracker instead keeps one persistent ConflictGraph in
// incremental (Pearce–Kelly) mode and *diffs* each transaction's blocker
// set against the previous one, so a stall tick whose waits-for relation
// did not change costs a handful of vector compares, a changed edge costs
// O(affected region), and the cycle query is O(1).

#ifndef NSE_SCHEDULER_WAITS_FOR_H_
#define NSE_SCHEDULER_WAITS_FOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/conflict_graph.h"

namespace nse {

/// A persistent waits-for graph over txn ids (1-based), maintained by edge
/// diffs. Node capacity grows on demand (the graph is rebuilt — replaying
/// the current edges — when a new high txn id appears, which is rare).
class WaitsForTracker {
 public:
  WaitsForTracker() = default;

  /// Pre-sizes the node set for txn ids 1..n (optional; SetWaits grows on
  /// demand).
  void EnsureTxns(size_t n);

  /// Replaces txn's outgoing wait edges with `blockers` (self-waits and
  /// duplicates are dropped). Only the symmetric difference against the
  /// previous blocker set touches the graph.
  void SetWaits(TxnId txn, const std::vector<TxnId>& blockers);

  /// Drops txn's outgoing wait edges (it stopped waiting).
  void ClearWaits(TxnId txn) { SetWaits(txn, {}); }

  /// Txn completed or was aborted: drops its outgoing edges and every edge
  /// waiting on it, and re-detects the cycle state if one was recorded.
  void OnResolved(TxnId txn);

  /// True iff the current waits-for relation has a cycle. O(1).
  bool has_cycle() const;

  /// The recorded deadlock cycle (txn ids, first == last), or nullopt.
  const std::optional<std::vector<TxnId>>& cycle() const;

  /// The wait edge that closed the recorded cycle, or nullopt.
  const std::optional<std::pair<TxnId, TxnId>>& cycle_edge() const;

  /// Graph mutations actually performed — the work the diffing saves shows
  /// up as these counters staying flat across unchanged stall ticks.
  uint64_t edges_added() const { return edges_added_; }
  uint64_t edges_removed() const { return edges_removed_; }

  /// The underlying incremental graph (read-only; for tests and benches).
  const ConflictGraph& graph() const { return *graph_; }

 private:
  std::optional<ConflictGraph> graph_;
  std::vector<std::vector<TxnId>> waits_;  // sorted blocker set per txn id
  size_t capacity_ = 0;                    // txn ids 1..capacity_ are nodes
  uint64_t edges_added_ = 0;
  uint64_t edges_removed_ = 0;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_WAITS_FOR_H_
