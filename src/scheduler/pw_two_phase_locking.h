// Predicate-wise two-phase locking: 2PL applied independently inside each
// conjunct data set. A transaction acquires locks on demand but releases all
// its locks on conjunct d_e as soon as it has performed its last access to
// d_e (the access plan makes that point known). Within each d_e the
// discipline is two-phase, so each projection S^{d_e} is conflict
// serializable — the produced schedules are PWSR (Definition 2) though in
// general not serializable. This is the mechanism that shortens the
// long-duration waits of strict 2PL (paper §1, [11]).
//
// Under the thread-safe contract the per-conjunct release is fused into
// RequestAccess: a granted last-touch of a conjunct releases that
// conjunct's locks before returning (the old AfterAccess hook), followed by
// a Poke() so blocked requesters retry immediately.

#ifndef NSE_SCHEDULER_PW_TWO_PHASE_LOCKING_H_
#define NSE_SCHEDULER_PW_TWO_PHASE_LOCKING_H_

#include "constraints/integrity_constraint.h"
#include "scheduler/lock_manager.h"
#include "scheduler/scheduler.h"

namespace nse {

/// Predicate-wise 2PL policy over the conjuncts of an IC. Items outside all
/// conjuncts are locked until completion (they cannot break any conjunct's
/// serializability).
class PredicatewiseTwoPhaseLocking : public SchedulerPolicy {
 public:
  explicit PredicatewiseTwoPhaseLocking(const IntegrityConstraint* ic)
      : ic_(ic) {}

  std::string name() const override { return "pw-2pl"; }

  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override;
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript& script,
                              size_t step) const override;

  /// Outstanding lock grants — 0 at quiescence, or the policy leaked
  /// (the chaos harness's residual-state check).
  size_t held_locks() const { return locks_.num_locks(); }

 protected:
  void DoCommit(TxnId txn) override { locks_.ReleaseAll(txn); }
  void DoAbort(TxnId txn) override { locks_.ReleaseAll(txn); }

 private:
  const IntegrityConstraint* ic_;
  LockManager locks_;
};

}  // namespace nse

#endif  // NSE_SCHEDULER_PW_TWO_PHASE_LOCKING_H_
