#include "scheduler/fault_injection.h"

#include "common/logging.h"

namespace nse {

namespace {

// Stream-family ids, SplitMix64-jumped apart by Rng::Split so the fault
// classes draw from pairwise independent streams: tweaking one knob never
// shifts another class's decisions.
constexpr uint64_t kArrivalStream = 1;
constexpr uint64_t kCrashStream = 2;
constexpr uint64_t kClientAbortStream = 3;
constexpr uint64_t kLatencyStream = 4;

}  // namespace

FaultPlan::FaultPlan(const FaultPlanConfig& config)
    : config_(config), base_(config.seed) {
  NSE_CHECK_MSG(config_.max_latency_spike_ticks >= 1,
                "latency spikes must last at least one tick");
}

uint64_t FaultPlan::PerturbedArrival(TxnId txn,
                                     uint64_t scripted_arrival) const {
  if (config_.max_arrival_delay == 0) return scripted_arrival;
  Rng stream = base_.Split(kArrivalStream).Split(txn);
  return scripted_arrival + stream.NextBelow(config_.max_arrival_delay + 1);
}

std::optional<size_t> FaultPlan::CrashStep(TxnId txn,
                                           size_t script_len) const {
  if (config_.crash_probability <= 0.0 || script_len == 0) {
    return std::nullopt;
  }
  Rng stream = base_.Split(kCrashStream).Split(txn);
  if (!stream.NextBool(config_.crash_probability)) return std::nullopt;
  return static_cast<size_t>(stream.NextBelow(script_len));
}

bool FaultPlan::ClientAbortsAt(TxnId txn, uint64_t incarnation, size_t step,
                               size_t script_len,
                               uint64_t aborts_so_far) const {
  if (config_.client_abort_probability <= 0.0 || script_len == 0 ||
      aborts_so_far >= config_.max_client_aborts_per_txn) {
    return false;
  }
  Rng stream = base_.Split(kClientAbortStream).Split(txn).Split(incarnation);
  if (!stream.NextBool(config_.client_abort_probability)) return false;
  return static_cast<size_t>(stream.NextBelow(script_len)) == step;
}

uint64_t FaultPlan::LatencySpikeAt(TxnId txn, uint64_t incarnation,
                                   size_t step) const {
  if (config_.latency_spike_probability <= 0.0) return 0;
  Rng stream =
      base_.Split(kLatencyStream).Split(txn).Split(incarnation).Split(step);
  if (!stream.NextBool(config_.latency_spike_probability)) return 0;
  return 1 + stream.NextBelow(config_.max_latency_spike_ticks);
}

bool FaultPlan::empty() const {
  return config_.client_abort_probability <= 0.0 &&
         config_.crash_probability <= 0.0 &&
         config_.latency_spike_probability <= 0.0 &&
         config_.max_arrival_delay == 0;
}

}  // namespace nse
