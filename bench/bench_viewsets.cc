// Experiments F2, F3, F6 (DESIGN.md): the per-lemma machinery.
//
// F2 — Lemma 2 view sets VS(T_i, p, d, S): computation cost and a soundness
//      sweep (RS(before(T_i^d, p, S)) ⊆ VS at every p) over random
//      serializable projections.
// F3 — Definition 4 states state(T_i, d, S, DS): chain computation cost and
//      the read-containment/final-state identities.
// F6 — Lemma 6 (delayed-read) view-set variant on DR schedules.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/logging.h"
#include "nse/nse.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

struct ViewScenario {
  Database db;
  Schedule schedule;
  DbState initial;
  DataSet d;
  std::vector<TxnId> order;

  /// A near-serial (hence projection-serializable) random schedule.
  static ViewScenario Make(size_t txns, size_t ops_per_txn, uint64_t seed) {
    ViewScenario sc;
    constexpr size_t kItems = 12;
    for (size_t i = 0; i < kItems; ++i) {
      auto id = sc.db.AddItem(StrCat("x", i), Domain::IntRange(-64, 64));
      NSE_CHECK(id.ok());
      sc.initial.Set(*id, Value(0));
    }
    Rng rng(seed);
    sc.d = DataSet({0, 1, 2, 3, 4, 5});
    // Retry with fewer swaps until the projection is serializable (a serial
    // schedule — zero swaps — always is, so this terminates).
    for (int swaps = 12; swaps >= 0; swaps -= 3) {
      OpSequence ops;
      for (size_t t = 1; t <= txns; ++t) {
        for (size_t k = 0; k < ops_per_txn; ++k) {
          ItemId item = static_cast<ItemId>(rng.NextBelow(kItems));
          if (rng.NextBool(0.5)) {
            ops.push_back(Operation::Write(static_cast<TxnId>(t), item,
                                           Value(static_cast<int64_t>(k))));
          } else {
            ops.push_back(
                Operation::Read(static_cast<TxnId>(t), item, Value(0)));
          }
        }
      }
      for (int s = 0; s < swaps; ++s) {
        size_t i = rng.NextBelow(ops.size() - 1);
        if (ops[i].txn != ops[i + 1].txn) std::swap(ops[i], ops[i + 1]);
      }
      Schedule candidate(std::move(ops));
      auto csr = CheckConflictSerializability(candidate.Project(sc.d));
      if (csr.serializable) {
        sc.schedule = std::move(candidate);
        sc.order = *csr.order;
        return sc;
      }
    }
    NSE_CHECK_MSG(false, "serial schedule projection must be serializable");
    return sc;
  }
};

void BM_ViewSetsGeneral(benchmark::State& state) {
  ViewScenario sc =
      ViewScenario::Make(static_cast<size_t>(state.range(0)), 8, 11);
  size_t p = sc.schedule.size() / 2;
  for (auto _ : state) {
    auto vs = ComputeViewSets(sc.schedule, sc.d, sc.order, p,
                              ViewSetVariant::kGeneral);
    benchmark::DoNotOptimize(vs);
  }
  state.counters["txns"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ViewSetsGeneral)->Arg(4)->Arg(16)->Arg(64);

void BM_ViewSetsDelayedRead(benchmark::State& state) {
  ViewScenario sc =
      ViewScenario::Make(static_cast<size_t>(state.range(0)), 8, 13);
  size_t p = sc.schedule.size() / 2;
  for (auto _ : state) {
    auto vs = ComputeViewSets(sc.schedule, sc.d, sc.order, p,
                              ViewSetVariant::kDelayedRead);
    benchmark::DoNotOptimize(vs);
  }
}
BENCHMARK(BM_ViewSetsDelayedRead)->Arg(4)->Arg(16)->Arg(64);

void BM_TxnStates(benchmark::State& state) {
  ViewScenario sc =
      ViewScenario::Make(static_cast<size_t>(state.range(0)), 8, 17);
  for (auto _ : state) {
    auto states = ComputeTxnStates(sc.schedule, sc.d, sc.order, sc.initial);
    benchmark::DoNotOptimize(states);
  }
}
BENCHMARK(BM_TxnStates)->Arg(4)->Arg(16)->Arg(64);

void BM_ViewSetSoundnessSweep(benchmark::State& state) {
  // Full Lemma 2 audit: every position p of the schedule.
  ViewScenario sc = ViewScenario::Make(8, 8, 19);
  for (auto _ : state) {
    for (size_t p = 0; p < sc.schedule.size(); ++p) {
      auto unsound = FindViewSetUnsoundness(sc.schedule, sc.d, sc.order, p,
                                            ViewSetVariant::kGeneral);
      benchmark::DoNotOptimize(unsound);
    }
  }
}
BENCHMARK(BM_ViewSetSoundnessSweep);

void ReportLemmaSoundnessTable() {
  // F2/F3/F6 summary: soundness checks across random scenarios. The paper
  // proves these hold universally; the table reports observed counts.
  TablePrinter table({"lemma", "scenarios", "checks", "violations"});
  uint64_t l2_checks = 0, l2_bad = 0;
  uint64_t l6_checks = 0, l6_bad = 0;
  uint64_t d4_checks = 0, d4_bad = 0;
  int scenarios = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ViewScenario sc = ViewScenario::Make(4, 6, seed * 7 + 1);
    ++scenarios;
    for (size_t p = 0; p < sc.schedule.size(); ++p) {
      ++l2_checks;
      if (FindViewSetUnsoundness(sc.schedule, sc.d, sc.order, p,
                                 ViewSetVariant::kGeneral)
              .has_value()) {
        ++l2_bad;
      }
      if (IsDelayedRead(sc.schedule)) {
        ++l6_checks;
        if (FindViewSetUnsoundness(sc.schedule, sc.d, sc.order, p,
                                   ViewSetVariant::kDelayedRead)
                .has_value()) {
          ++l6_bad;
        }
      }
    }
    ++d4_checks;
    // Definition 4 consequence (a): reads contained in states. Read values
    // here are structural, so check set-level containment only.
    if (FindReadOutsideState(sc.schedule, sc.d, sc.order, sc.initial)
            .has_value()) {
      // Structural values may legitimately mismatch; only report when the
      // *items* escape the state, which FindReadOutsideState would flag for
      // genuine executions. Count it for visibility.
      ++d4_bad;
    }
    (void)d4_bad;
  }
  table.AddRow({"Lemma 2 (VS general)", StrCat(scenarios), StrCat(l2_checks),
                StrCat(l2_bad)});
  table.AddRow({"Lemma 6 (VS under DR)", StrCat(scenarios),
                StrCat(l6_checks), StrCat(l6_bad)});
  std::cout << "\n=== F2/F6: view-set soundness sweep ===\n"
            << table.Render()
            << "(paper expectation: 0 violations in both rows)\n\n";
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  nse::ReportLemmaSoundnessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
