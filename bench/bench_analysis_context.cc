// Cached vs. uncached full-checker sweeps over violation-search-sized
// workloads: the repeated-analysis cost the AnalysisContext refactor exists
// to kill.
//
// The "uncached" path runs the criteria the way pre-context code did — one
// free-function call per criterion, each rebuilding its artifacts from the
// raw schedule (Certify alone re-derives PWSR, DR, and the DAG). The
// "cached" path answers the same questions through one shared context. Both
// paths compute identical verdicts; only artifact reuse differs.
//
// Emits a fixed-width table on stdout and a JSON baseline (default
// BENCH_analysis_context.json, override with argv[1]) for the perf
// trajectory across PRs.

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "nse/nse.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

struct Scenario {
  Database db;
  std::optional<IntegrityConstraint> ic;

  static Scenario Make(size_t conjuncts) {
    Scenario sc;
    std::vector<Formula> formulas;
    for (size_t e = 0; e < conjuncts; ++e) {
      auto x = sc.db.AddItem(StrCat("c", e, "_x"), Domain::IntRange(-8, 8));
      auto y = sc.db.AddItem(StrCat("c", e, "_y"), Domain::IntRange(-8, 8));
      NSE_CHECK(x.ok() && y.ok());
      formulas.push_back(Eq(Var(*x), Var(*y)));
    }
    auto ic = IntegrityConstraint::FromConjuncts(sc.db, std::move(formulas));
    NSE_CHECK(ic.ok());
    sc.ic = std::move(ic).value();
    return sc;
  }
};

Schedule RandomSchedule(Rng& rng, size_t num_ops, size_t txns, size_t items) {
  OpSequence ops;
  ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    TxnId txn = static_cast<TxnId>(rng.NextBelow(txns) + 1);
    ItemId item = static_cast<ItemId>(rng.NextBelow(items));
    if (rng.NextBool(0.5)) {
      ops.push_back(Operation::Write(txn, item, Value(static_cast<int64_t>(i))));
    } else {
      ops.push_back(Operation::Read(txn, item, Value(0)));
    }
  }
  return Schedule(std::move(ops));
}

/// Verdict fingerprint, used to confirm both paths agree (and to keep the
/// optimizer honest).
struct SweepDigest {
  uint64_t csr = 0, pwsr = 0, dr = 0, strict = 0, dag = 0, certified = 0;

  bool operator==(const SweepDigest& other) const {
    return csr == other.csr && pwsr == other.pwsr && dr == other.dr &&
           strict == other.strict && dag == other.dag &&
           certified == other.certified;
  }
};

/// Pre-context style: every criterion re-derives its own artifacts from the
/// raw schedule — materialized per-conjunct projections with per-projection
/// conflict-graph builds for PWSR, a fresh reads-from relation for DR, and
/// a second full PWSR + DR + DAG derivation inside certification. This is
/// exactly the computation pattern callers had before AnalysisContext (the
/// free functions now share artifacts internally, so the pattern is spelled
/// out here).
SweepDigest UncachedSweep(const Database&, const IntegrityConstraint& ic,
                          const std::vector<Schedule>& schedules) {
  SweepDigest digest;
  auto pwsr_rebuild = [&ic](const Schedule& s) {
    bool is_pwsr = true;
    for (size_t e = 0; e < ic.num_conjuncts(); ++e) {
      CsrReport csr =
          CsrReportFromGraph(ConflictGraph::Build(s.Project(ic.data_set(e))));
      if (!csr.serializable) is_pwsr = false;
    }
    return is_pwsr;
  };
  auto dr_rebuild = [](const Schedule& s) {
    for (const ReadsFromEdge& edge : ReadsFromPairs(s)) {
      TxnId writer = s.at(edge.writer_pos).txn;
      if (writer == s.at(edge.reader_pos).txn) continue;
      if (!s.CompletedBy(writer, edge.reader_pos)) return false;
    }
    return true;
  };
  for (const Schedule& s : schedules) {
    if (CsrReportFromGraph(ConflictGraph::Build(s)).serializable) {
      ++digest.csr;
    }
    if (pwsr_rebuild(s)) ++digest.pwsr;
    if (dr_rebuild(s)) ++digest.dr;
    if (IsStrict(s)) ++digest.strict;
    if (DataAccessGraph::Build(s, ic).IsAcyclic()) ++digest.dag;
    // Certification re-derives all three hypotheses, as Certify did before
    // the context existed.
    bool certified = pwsr_rebuild(s) && ic.disjoint() &&
                     (dr_rebuild(s) || DataAccessGraph::Build(s, ic).IsAcyclic());
    if (certified) ++digest.certified;
  }
  return digest;
}

/// One shared context per schedule; identical questions, artifacts built
/// once each.
SweepDigest CachedSweep(const Database& db, const IntegrityConstraint& ic,
                        const std::vector<Schedule>& schedules) {
  SweepDigest digest;
  for (const Schedule& s : schedules) {
    AnalysisContext ctx(db, ic, s);
    if (ctx.csr_report().serializable) ++digest.csr;
    if (ctx.pwsr_report().is_pwsr) ++digest.pwsr;
    if (ctx.delayed_read()) ++digest.dr;
    if (ctx.strict()) ++digest.strict;
    if (ctx.access_graph().IsAcyclic()) ++digest.dag;
    if (Certify(ctx).guaranteed_strongly_correct()) ++digest.certified;
  }
  return digest;
}

double MillisOf(const std::function<SweepDigest()>& fn, SweepDigest& digest,
                int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    digest = fn();
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct RowResult {
  size_t ops, conjuncts, schedules;
  double uncached_ms, cached_ms;
  double speedup() const {
    return cached_ms == 0 ? 0 : uncached_ms / cached_ms;
  }
};

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  using namespace nse;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_analysis_context.json";

  struct Config {
    size_t ops, conjuncts, schedules;
  };
  // Violation-search-sized executions: hundreds of sampled schedules per
  // experiment, tens-to-thousands of operations each.
  const std::vector<Config> configs = {
      {64, 4, 600}, {256, 8, 300}, {1024, 8, 80}, {4096, 16, 16}};

  TablePrinter table({"ops/schedule", "conjuncts", "schedules",
                      "uncached ms", "cached ms", "speedup"});
  std::vector<RowResult> rows;
  for (const Config& config : configs) {
    Scenario sc = Scenario::Make(config.conjuncts);
    Rng rng(4242);
    std::vector<Schedule> schedules;
    schedules.reserve(config.schedules);
    for (size_t i = 0; i < config.schedules; ++i) {
      schedules.push_back(
          RandomSchedule(rng, config.ops, 8, sc.db.num_items()));
    }

    SweepDigest uncached_digest, cached_digest;
    double uncached_ms = MillisOf(
        [&] { return UncachedSweep(sc.db, *sc.ic, schedules); },
        uncached_digest, 3);
    double cached_ms = MillisOf(
        [&] { return CachedSweep(sc.db, *sc.ic, schedules); },
        cached_digest, 3);
    NSE_CHECK(uncached_digest == cached_digest);

    RowResult row{config.ops, config.conjuncts, config.schedules,
                  uncached_ms, cached_ms};
    table.AddRow({StrCat(row.ops), StrCat(row.conjuncts),
                  StrCat(row.schedules), FormatDouble(row.uncached_ms, 2),
                  FormatDouble(row.cached_ms, 2),
                  StrCat(FormatDouble(row.speedup(), 2), "x")});
    rows.push_back(row);
  }

  std::cout << "\n=== AnalysisContext: cached vs uncached checker sweeps ===\n"
            << table.Render()
            << "(same verdicts on both paths; speedup is pure artifact "
               "reuse)\n";

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"analysis_context\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowResult& row = rows[i];
    std::fprintf(json,
                 "    {\"ops\": %zu, \"conjuncts\": %zu, \"schedules\": %zu, "
                 "\"uncached_ms\": %.3f, \"cached_ms\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 row.ops, row.conjuncts, row.schedules, row.uncached_ms,
                 row.cached_ms, row.speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "baseline written to " << json_path << "\n";
  return 0;
}
