// The multiversion bet, measured: MVTO and snapshot isolation vs strict
// 2PL and single-version timestamp ordering across a read-fraction sweep
// on one contended item set. The version store's promise is that writers
// never block (or restart) readers: a read-only transaction is served a
// stale committed version instead of waiting on a lock (2PL) or dying on
// a too-new write (TO). As the read fraction rises, the single-version
// policies pay growing wait/restart bills while the multiversion rows'
// read-only rollback column stays pinned at zero and their makespan
// approaches the conflict-free floor.
//
// Simulated time (makespan, throughput = completed / makespan) is fully
// deterministic per seed, so `speedup_vs_2pl` (policy throughput over
// strict 2PL's on the same mix) is a stable regression-guard field, and
// the outcome counters (completed, rollbacks, read_only_rollbacks) are
// guarded exactly. Every run is differentially checked: 2PL/TO traces
// must be CSR; MVTO traces must verify MVSR through their version
// annotations; SI traces must verify MVSR whenever the VKN robustness
// certificate holds; read-only transactions must never roll back under
// either multiversion policy; and the version plane must be quiescent at
// exit (no stamps, claims, buffered writes, or untruncated chains).
//
// --smoke runs a tiny mix with all the checks and no JSON; the full run
// writes BENCH_mvcc.json (override the path with the last argument).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/multiversion.h"
#include "analysis/robustness.h"
#include "analysis/serializability.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "scheduler/metrics.h"
#include "scheduler/mvto_policy.h"
#include "scheduler/sim.h"
#include "scheduler/snapshot_isolation.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"
#include "state/version_store.h"

namespace nse {
namespace {

struct MixCase {
  std::string name;
  double read_fraction = 0;
  bool read_mostly = false;  // rows the multiversion floor is about
};

/// A contended read/write mix over a small shared item set. A fixed
/// fraction of the transactions are read-only scans; the rest are
/// read-modify-write updaters. Roles are shuffled by the seeded rng so
/// readers and writers interleave in admission order, and everything
/// arrives at tick 0 — contention is the point.
std::vector<TxnScript> MakeMixedScripts(size_t num_txns, size_t num_items,
                                        double read_fraction, uint64_t seed) {
  Rng rng(seed);
  const size_t readers =
      static_cast<size_t>(read_fraction * static_cast<double>(num_txns) + 0.5);
  std::vector<char> is_reader(num_txns, 0);
  for (size_t i = 0; i < readers && i < num_txns; ++i) is_reader[i] = 1;
  rng.Shuffle(is_reader);

  std::vector<TxnScript> scripts;
  scripts.reserve(num_txns);
  for (size_t t = 0; t < num_txns; ++t) {
    TxnScript script;
    if (is_reader[t]) {
      // A scan: three distinct-ish reads across the shared set.
      for (size_t k = 0; k < 3; ++k) {
        script.steps.push_back(
            {OpAction::kRead, static_cast<ItemId>(rng.NextBelow(num_items))});
      }
    } else {
      // An updater: read-modify-write on two items.
      for (size_t k = 0; k < 2; ++k) {
        ItemId item = static_cast<ItemId>(rng.NextBelow(num_items));
        script.steps.push_back({OpAction::kRead, item});
        script.steps.push_back({OpAction::kWrite, item});
      }
    }
    scripts.push_back(std::move(script));
  }
  return scripts;
}

bool ReadOnly(const TxnScript& script) {
  for (const AccessStep& step : script.steps) {
    if (step.action == OpAction::kWrite) return false;
  }
  return true;
}

uint64_t ReadOnlyRollbacks(const std::vector<TxnScript>& scripts,
                           const SimResult& result) {
  uint64_t total = 0;
  for (size_t i = 0; i < scripts.size(); ++i) {
    if (ReadOnly(scripts[i])) total += result.txn_restarts[i];
  }
  return total;
}

void CheckVersionPlaneQuiescent(const VersionStore& store,
                                const std::string& policy) {
  NSE_CHECK_MSG(store.uncommitted_versions() == 0,
                "%s left %llu uncommitted versions", policy.c_str(),
                static_cast<unsigned long long>(store.uncommitted_versions()));
  NSE_CHECK_MSG(store.max_chain_length() <= 1,
                "%s left an untruncated chain of length %llu", policy.c_str(),
                static_cast<unsigned long long>(store.max_chain_length()));
}

/// MVSR through the trace's own version annotations — the class is
/// verified from what the run observably did, not assumed from the
/// policy's construction.
void CheckAnnotatedMvsr(const SimResult& result, const std::string& policy) {
  VersionAnnotations versions;
  versions.read_from = result.read_sources;
  MultiversionReport report = CheckMvsr(result.schedule, versions);
  NSE_CHECK_MSG(report.decided && report.satisfied,
                "%s emitted a non-MVSR trace: %s", policy.c_str(),
                report.detail.c_str());
}

struct Outcome {
  SimResult result;
  double wall_ms = 0;
  uint64_t read_only_rollbacks = 0;
};

Outcome RunChecked(const std::string& which,
                   const std::vector<TxnScript>& scripts) {
  const size_t n = scripts.size();
  std::unique_ptr<SchedulerPolicy> policy;
  MvtoPolicy* mvto = nullptr;
  SnapshotIsolationPolicy* si = nullptr;
  if (which == "strict-2pl") {
    policy = std::make_unique<StrictTwoPhaseLocking>();
  } else if (which == "to") {
    policy = std::make_unique<TimestampOrderingPolicy>(n);
  } else if (which == "mvto") {
    auto p = std::make_unique<MvtoPolicy>(n);
    mvto = p.get();
    policy = std::move(p);
  } else {
    NSE_CHECK_MSG(which == "snapshot-isolation", "unknown policy %s",
                  which.c_str());
    auto p = std::make_unique<SnapshotIsolationPolicy>(n);
    si = p.get();
    policy = std::move(p);
  }

  auto start = std::chrono::steady_clock::now();
  auto result = RunSimulation(*policy, scripts);
  auto end = std::chrono::steady_clock::now();
  NSE_CHECK_MSG(result.ok(), "simulation failed under %s: %s", which.c_str(),
                result.status().ToString().c_str());
  NSE_CHECK_MSG(result->completed == n, "%s completed %llu of %zu txns",
                which.c_str(),
                static_cast<unsigned long long>(result->completed), n);

  if (mvto != nullptr) {
    CheckAnnotatedMvsr(*result, which);
    NSE_CHECK_MSG(mvto->active_stamp_entries() == 0,
                  "mvto leaked active stamps");
    CheckVersionPlaneQuiescent(mvto->store(), which);
  } else if (si != nullptr) {
    // SI's class promise is conditional: MVSR exactly when the VKN
    // robustness certificate holds for the committed transactions.
    if (CheckSiRobustness(result->schedule).robust) {
      CheckAnnotatedMvsr(*result, which);
    }
    NSE_CHECK_MSG(si->active_snapshots() == 0 && si->pending_writes() == 0 &&
                      si->held_write_claims() == 0,
                  "snapshot-isolation leaked snapshot/write state");
    CheckVersionPlaneQuiescent(si->store(), which);
  } else {
    NSE_CHECK_MSG(IsConflictSerializable(result->schedule),
                  "%s emitted a non-CSR trace", which.c_str());
  }

  Outcome outcome;
  outcome.result = std::move(result).value();
  outcome.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  outcome.read_only_rollbacks = ReadOnlyRollbacks(scripts, outcome.result);
  if (mvto != nullptr || si != nullptr) {
    NSE_CHECK_MSG(outcome.read_only_rollbacks == 0,
                  "%s rolled back a read-only transaction %llu time(s)",
                  which.c_str(),
                  static_cast<unsigned long long>(outcome.read_only_rollbacks));
  }
  return outcome;
}

struct Row {
  std::string workload;
  std::string policy;
  size_t txns = 0;
  uint64_t completed = 0;
  uint64_t rollbacks = 0;  // aborts + restarts + wounds, all transactions
  uint64_t read_only_rollbacks = 0;
  uint64_t wait_ticks = 0;
  uint64_t makespan = 0;
  double throughput = 0;  // completed / makespan, simulated ticks
  double speedup_vs_2pl = 1.0;
  double wall_ms = 0;
  bool guard_speedup = false;  // only non-2PL rows carry the ratio
};

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  using namespace nse;
  bool smoke = false;
  std::string json_path = "BENCH_mvcc.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const size_t num_txns = smoke ? 6 : 16;
  const size_t num_items = 4;
  const uint64_t seed = 7;
  const std::vector<std::string> policies = {"strict-2pl", "to", "mvto",
                                             "snapshot-isolation"};
  // The sweep: the share of read-only scans among the transactions. The
  // read_mostly rows are the regime the multiversion promise is about —
  // there the bench asserts MVTO and SI throughput at or above 2PL's.
  std::vector<MixCase> mixes = {
      {"write_heavy", 0.0, false},
      {"mixed_50", 0.5, false},
      {"read_mostly_88", 0.875, true},
      {"read_only", 1.0, true},
  };

  TablePrinter table({"workload", "policy", "completed", "rollbacks",
                      "ro_rollbacks", "waits", "makespan", "speedup_vs_2pl"});
  std::vector<Row> rows;

  for (const MixCase& mix : mixes) {
    auto scripts =
        MakeMixedScripts(num_txns, num_items, mix.read_fraction, seed);
    double baseline_tput = 0;
    for (const std::string& policy : policies) {
      Outcome outcome = RunChecked(policy, scripts);

      Row row;
      row.workload = mix.name;
      row.policy = policy;
      row.txns = scripts.size();
      row.completed = outcome.result.completed;
      row.rollbacks = outcome.result.aborts + outcome.result.restarts +
                      outcome.result.wounds;
      row.read_only_rollbacks = outcome.read_only_rollbacks;
      row.wait_ticks = outcome.result.total_wait_ticks;
      row.makespan = outcome.result.makespan;
      row.throughput = outcome.result.throughput;
      row.wall_ms = outcome.wall_ms;
      if (policy == "strict-2pl") {
        baseline_tput = row.throughput;
      } else {
        row.speedup_vs_2pl =
            baseline_tput == 0 ? 1.0 : row.throughput / baseline_tput;
        row.guard_speedup = true;
      }
      // The read-mostly floor is asserted on the full configuration only:
      // smoke makespans are a handful of ticks, so the ratio quantizes
      // too coarsely to carry the claim.
      if (!smoke && mix.read_mostly &&
          (policy == "mvto" || policy == "snapshot-isolation")) {
        NSE_CHECK_MSG(row.speedup_vs_2pl >= 1.0,
                      "%s fell below strict 2PL on the read-mostly mix %s "
                      "(speedup %.3f)",
                      policy.c_str(), mix.name.c_str(), row.speedup_vs_2pl);
      }
      rows.push_back(row);
      table.AddRow({row.workload, row.policy, StrCat(row.completed),
                    StrCat(row.rollbacks), StrCat(row.read_only_rollbacks),
                    StrCat(row.wait_ticks), StrCat(row.makespan),
                    row.guard_speedup ? FormatDouble(row.speedup_vs_2pl, 2)
                                      : std::string("-")});
    }
  }

  std::cout << "\n=== Multiversion read/write mixes (simulated ticks; "
               "deterministic) ===\n"
            << table.Render()
            << "(ro_rollbacks: rollbacks of read-only transactions — the "
               "writers-never-block-readers pin; 0 for mvto and "
               "snapshot-isolation on every mix)\n";

  if (!smoke) {
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"mvcc\",\n  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          json,
          "    {\"workload\": \"%s\", \"policy\": \"%s\", \"txns\": %zu, "
          "\"completed\": %llu, \"rollbacks\": %llu, "
          "\"read_only_rollbacks\": %llu, ",
          row.workload.c_str(), row.policy.c_str(), row.txns,
          static_cast<unsigned long long>(row.completed),
          static_cast<unsigned long long>(row.rollbacks),
          static_cast<unsigned long long>(row.read_only_rollbacks));
      if (row.guard_speedup) {
        std::fprintf(json, "\"speedup_vs_2pl\": %.3f, ", row.speedup_vs_2pl);
      }
      std::fprintf(json, "\"makespan\": %llu, \"wall_ms\": %.3f}%s\n",
                   static_cast<unsigned long long>(row.makespan), row.wall_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "baseline written to " << json_path << "\n";
  }
  return 0;
}
