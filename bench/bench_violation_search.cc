// Violation-search engine throughput: the sequential/uncached legacy
// configuration vs. the worker-pool engine with the shared solver cache.
//
// Workloads follow the search's production shape (ROADMAP experiments):
// partitioned all-equal invariants, straight-line correct programs, mixed
// random/near-serial exploration, full per-execution analysis (PWSR / DR /
// DAG artifacts + strong-correctness solver checks). The 256-op/8-conjunct
// row is the reference configuration.
//
// Every cache-on row must produce the identical SearchOutcome regardless of
// thread count (the engine's determinism contract — NSE_CHECKed here); the
// cache-off row samples initial states through the randomized backtracking
// search instead of the cached sampling domains, so its outcome is a
// different (equally valid) draw and only its wall time is comparable.
//
// Each workload also runs in exhaustive mode: the parallel subtree engine
// enumerating a budgeted canonical prefix of all interleavings from two
// enumerated consistent initial states. Exhaustive verdicts are independent
// of the thread count, the cache, and the enumerator (nothing is sampled),
// so every exhaustive row — including the sequential baseline — must agree
// on every count. The baseline row is the pre-engine configuration
// (replay-per-node reference enumerator, one thread, no cache); the
// speedups of the other rows are dominated by the incremental step/undo
// enumerator, with the shared pre-warmed SolverCache and worker threads
// composing on top on multi-core hosts.
//
// Emits a fixed-width table on stdout and a JSON baseline (default
// BENCH_violation_search.json, override with the last argument). The JSON
// records host_cores: on a single-core container the thread rows measure
// engine overhead only — the committed speedups come from the solver cache;
// multi-core hosts stack thread scaling on top (see docs/bench.md).
//
// --smoke: tiny trial counts, parity assertions only, no JSON — wired into
// ctest so every CI push exercises the parallel path.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "nse/nse.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

struct BenchCase {
  const char* name;
  PartitionedWorkloadConfig config;
  uint64_t trials;
};

/// The reference workloads. Domain [-256, 256] keeps the per-conjunct
/// solver searches (the violation search's hot inner loop) dominant, which
/// is exactly the regime the SolverCache targets.
std::vector<BenchCase> MakeCases(bool smoke) {
  // 64 ops per sampled execution: 4 txns, each visiting 4 partitions and
  // rewriting 3 items per visit (plus the pivot read).
  PartitionedWorkloadConfig small;
  small.num_partitions = 4;
  small.items_per_partition = 3;
  small.num_txns = 4;
  small.partitions_per_txn = 4;
  small.branch_probability = 0.0;
  small.cross_read_probability = 0.5;
  small.domain_lo = -256;
  small.domain_hi = 256;
  small.seed = 42;

  // ~256 ops per sampled execution, 8 conjuncts: 8 txns, each visiting 8
  // partitions and rewriting 3 items per visit (+ cross reads).
  PartitionedWorkloadConfig big;
  big.num_partitions = 8;
  big.items_per_partition = 3;
  big.num_txns = 8;
  big.partitions_per_txn = 8;
  big.branch_probability = 0.0;
  big.cross_read_probability = 0.5;
  big.domain_lo = -256;
  big.domain_hi = 256;
  big.seed = 42;

  if (smoke) {
    return {{"64op_4conj", small, 12}, {"256op_8conj", big, 6}};
  }
  return {{"64op_4conj", small, 600}, {"256op_8conj", big, 200}};
}

struct RowResult {
  std::string workload;
  const char* mode = "randomized";
  /// Exhaustive rows only: "reference" (replay-per-node, the pre-engine
  /// sequential baseline) or "incremental" (persistent-arena step/undo).
  const char* enumerator = nullptr;
  size_t ops = 0;  // measured ops of one serial execution
  size_t conjuncts = 0;
  uint64_t trials = 0;
  size_t threads = 1;
  bool cache = false;
  double wall_ms = 0;
  double trials_per_s = 0;
  double speedup = 1.0;  // vs. the workload's sequential/uncached row
  double cache_hit_rate = 0;
  uint64_t cache_computes = 0;
  uint64_t checked = 0;
  uint64_t violations = 0;
  uint64_t truncated = 0;
};

SearchOutcome MustSearch(const Workload& workload, const SearchConfig& config,
                         uint64_t seed) {
  Rng rng(seed);
  HypothesisFilter filter;  // no filter: every execution fully checked
  auto outcome = SearchForViolations(workload.db, *workload.ic,
                                     workload.ProgramPtrs(), filter, rng,
                                     config);
  NSE_CHECK_MSG(outcome.ok(), "%s", outcome.status().ToString().c_str());
  return std::move(outcome).value();
}

/// Best-of-`reps` wall time for one configuration.
double MillisOf(const Workload& workload, const SearchConfig& config,
                uint64_t seed, int reps, SearchOutcome& outcome) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    outcome = MustSearch(workload, config, seed);
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

size_t SerialOpCount(const Workload& workload) {
  Rng rng(1);
  ConsistencyChecker checker(workload.db, *workload.ic);
  auto initial = checker.SampleConsistentState(rng);
  NSE_CHECK(initial.ok());
  std::vector<size_t> order(workload.programs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto run = ExecuteSerially(workload.db, workload.ProgramPtrs(), *initial,
                             order);
  NSE_CHECK(run.ok());
  return run->schedule.size();
}

bool SameCounts(const SearchOutcome& a, const SearchOutcome& b) {
  return a.trials == b.trials && a.filtered_out == b.filtered_out &&
         a.checked == b.checked && a.violations == b.violations &&
         a.truncated == b.truncated &&
         a.first_violation_trial == b.first_violation_trial;
}

SearchOutcome MustExhaustive(const Workload& workload,
                             const std::vector<DbState>& states,
                             const ExhaustiveSearchConfig& config) {
  HypothesisFilter filter;  // no filter: every enumerated execution checked
  auto outcome = ExhaustiveViolationSearch(workload.db, *workload.ic,
                                           workload.ProgramPtrs(), states,
                                           filter, config);
  NSE_CHECK_MSG(outcome.ok(), "%s", outcome.status().ToString().c_str());
  return std::move(outcome).value();
}

/// Best-of-`reps` wall time for one exhaustive configuration.
double ExhaustiveMillisOf(const Workload& workload,
                          const std::vector<DbState>& states,
                          const ExhaustiveSearchConfig& config, int reps,
                          SearchOutcome& outcome) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    outcome = MustExhaustive(workload, states, config);
    auto end = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  using namespace nse;
  bool smoke = false;
  std::string json_path = "BENCH_violation_search.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const size_t host_cores = std::thread::hardware_concurrency();
  const int reps = smoke ? 1 : 2;
  const uint64_t seed = 20260730;

  struct Config {
    size_t threads;
    bool cache;
  };
  const std::vector<Config> grid = smoke
                                       ? std::vector<Config>{{1, false},
                                                             {1, true},
                                                             {4, true}}
                                       : std::vector<Config>{{1, false},
                                                             {1, true},
                                                             {2, true},
                                                             {8, true}};

  TablePrinter table({"workload", "mode", "trials", "threads", "cache",
                      "wall ms", "trials/s", "speedup", "hit rate"});
  std::vector<RowResult> rows;
  for (const BenchCase& bench_case : MakeCases(smoke)) {
    auto workload = MakePartitionedWorkload(bench_case.config);
    NSE_CHECK_MSG(workload.ok(), "%s",
                  workload.status().ToString().c_str());
    const size_t ops = SerialOpCount(*workload);

    double baseline_ms = 0;
    SearchOutcome reference;  // the cache-on outcome all thread counts must match
    bool have_reference = false;
    for (const Config& config : grid) {
      SearchConfig search;
      search.trials = bench_case.trials;
      search.threads = config.threads;
      search.share_solver_cache = config.cache;
      SearchOutcome outcome;
      double ms = MillisOf(*workload, search, seed, reps, outcome);
      if (config.threads == 1 && !config.cache) baseline_ms = ms;
      if (config.cache) {
        // Determinism contract: identical outcomes for every thread count.
        if (!have_reference) {
          reference = outcome;
          have_reference = true;
        } else {
          NSE_CHECK_MSG(SameCounts(reference, outcome),
                        "outcome differs across thread counts");
        }
      }

      RowResult row;
      row.workload = bench_case.name;
      row.ops = ops;
      row.conjuncts = bench_case.config.num_partitions;
      row.trials = bench_case.trials;
      row.threads = config.threads;
      row.cache = config.cache;
      row.wall_ms = ms;
      row.trials_per_s =
          ms == 0 ? 0 : static_cast<double>(bench_case.trials) / (ms / 1000.0);
      row.speedup = (baseline_ms == 0 || ms == 0) ? 1.0 : baseline_ms / ms;
      row.cache_hit_rate = outcome.solver_cache.hit_rate();
      row.cache_computes = outcome.solver_cache.computes;
      row.checked = outcome.checked;
      row.violations = outcome.violations;
      row.truncated = outcome.truncated;
      rows.push_back(row);

      table.AddRow({row.workload, row.mode, StrCat(row.trials),
                    StrCat(row.threads), row.cache ? "on" : "off",
                    FormatDouble(row.wall_ms, 2),
                    FormatDouble(row.trials_per_s, 1),
                    StrCat(FormatDouble(row.speedup, 2), "x"),
                    FormatDouble(row.cache_hit_rate, 3)});
    }

    // ---- exhaustive mode ------------------------------------------------
    // The exhaustive engine enumerates the same canonical interleaving
    // stream whatever the thread count, cache setting, or enumerator
    // (nothing is sampled), so EVERY exhaustive row must agree on every
    // count — including the sequential baseline the speedups are measured
    // against. That baseline is the pre-engine configuration: one thread,
    // no cache, and the replay-per-node reference enumerator. The win of
    // the other rows is dominated by the incremental step/undo enumerator
    // (one program step per tree edge instead of an O(depth) prefix replay
    // per node); the shared pre-warmed SolverCache and extra workers
    // compose with it on multi-core hosts.
    const uint64_t limit = smoke
                               ? 4
                               : (std::strcmp(bench_case.name, "64op_4conj")
                                      ? 40    // 256op_8conj
                                      : 150); // 64op_4conj
    ConsistencyChecker checker(workload->db, *workload->ic);
    auto states = checker.EnumerateConsistentStates(2);
    NSE_CHECK_MSG(states.ok(), "%s", states.status().ToString().c_str());

    struct ExhaustiveConfig {
      size_t threads;
      bool cache;
      bool reference;
    };
    const std::vector<ExhaustiveConfig> exhaustive_grid =
        smoke ? std::vector<ExhaustiveConfig>{{1, false, true},
                                              {1, true, false},
                                              {4, true, false}}
              : std::vector<ExhaustiveConfig>{{1, false, true},
                                              {1, false, false},
                                              {1, true, false},
                                              {2, true, false},
                                              {8, true, false}};

    double exh_baseline_ms = 0;
    SearchOutcome exh_reference;
    bool have_exh_reference = false;
    for (const ExhaustiveConfig& config : exhaustive_grid) {
      ExhaustiveSearchConfig search;
      search.interleaving_limit = limit;
      search.threads = config.threads;
      search.share_solver_cache = config.cache;
      search.reference_enumerator = config.reference;
      SearchOutcome outcome;
      double ms = ExhaustiveMillisOf(*workload, *states, search, reps, outcome);
      if (config.reference) exh_baseline_ms = ms;
      if (!have_exh_reference) {
        exh_reference = outcome;
        have_exh_reference = true;
      } else {
        NSE_CHECK_MSG(SameCounts(exh_reference, outcome),
                      "exhaustive outcome differs across configurations");
      }

      RowResult row;
      row.workload = bench_case.name;
      row.mode = "exhaustive";
      row.enumerator = config.reference ? "reference" : "incremental";
      row.ops = ops;
      row.conjuncts = bench_case.config.num_partitions;
      row.trials = outcome.trials;
      row.threads = config.threads;
      row.cache = config.cache;
      row.wall_ms = ms;
      row.trials_per_s =
          ms == 0 ? 0 : static_cast<double>(outcome.trials) / (ms / 1000.0);
      row.speedup =
          (exh_baseline_ms == 0 || ms == 0) ? 1.0 : exh_baseline_ms / ms;
      row.cache_hit_rate = outcome.solver_cache.hit_rate();
      row.cache_computes = outcome.solver_cache.computes;
      row.checked = outcome.checked;
      row.violations = outcome.violations;
      row.truncated = outcome.truncated;
      rows.push_back(row);

      table.AddRow({row.workload,
                    config.reference ? "exh-ref" : "exhaustive",
                    StrCat(row.trials), StrCat(row.threads),
                    row.cache ? "on" : "off", FormatDouble(row.wall_ms, 2),
                    FormatDouble(row.trials_per_s, 1),
                    StrCat(FormatDouble(row.speedup, 2), "x"),
                    FormatDouble(row.cache_hit_rate, 3)});
    }
  }

  std::cout << "\n=== Violation search: worker pool + shared solver cache ===\n"
            << table.Render() << "(host cores: " << host_cores
            << "; speedup vs the sequential/uncached row of each workload; "
               "cache-on outcomes are identical across thread counts)\n";

  if (smoke) {
    std::cout << "smoke mode: parity checks passed, no baseline written\n";
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"violation_search\",\n  \"host_cores\": %zu,"
               "\n  \"rows\": [\n",
               host_cores);
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowResult& row = rows[i];
    const std::string enum_field =
        row.enumerator == nullptr
            ? std::string()
            : StrCat("\"enumerator\": \"", row.enumerator, "\", ");
    std::fprintf(
        json,
        "    {\"workload\": \"%s\", \"mode\": \"%s\", %s\"ops\": %zu, "
        "\"conjuncts\": %zu, "
        "\"trials\": %llu, \"threads\": %zu, \"solver_cache\": %s, "
        "\"wall_ms\": %.3f, \"trials_per_s\": %.1f, "
        "\"speedup_vs_sequential\": %.3f, \"cache_hit_rate\": %.4f, "
        "\"cache_computes\": %llu, "
        "\"checked\": %llu, \"violations\": %llu, \"truncated\": %llu}%s\n",
        row.workload.c_str(), row.mode, enum_field.c_str(), row.ops,
        row.conjuncts,
        static_cast<unsigned long long>(row.trials), row.threads,
        row.cache ? "true" : "false", row.wall_ms, row.trials_per_s,
        row.speedup, row.cache_hit_rate,
        static_cast<unsigned long long>(row.cache_computes),
        static_cast<unsigned long long>(row.checked),
        static_cast<unsigned long long>(row.violations),
        static_cast<unsigned long long>(row.truncated),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "baseline written to " << json_path << "\n";
  return 0;
}
