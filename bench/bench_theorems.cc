// Experiments T1–T3, F4/F5/F7, A2 (DESIGN.md): the theorems as measurable
// claims.
//
// T1/T2/T3 — randomized violation search under each theorem's hypotheses
//            (expected violations: 0) and with the hypothesis dropped on
//            the Example 2 scenario (expected: violations found).
// A2       — exact structural certification vs randomized replay testing
//            of Definition 3.
// F4/F5/F7 — the cost of the induction machinery is implicitly measured by
//            the per-execution certification benchmarks.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/logging.h"
#include "nse/nse.h"
#include "paper/paper_examples.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

Workload TheoremWorkload(double branch_probability, bool acyclic,
                         uint64_t seed) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 2;
  config.num_txns = 4;
  config.partitions_per_txn = 2;
  config.cross_read_probability = 0.6;
  config.acyclic_cross_reads = acyclic;
  config.branch_probability = branch_probability;
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  NSE_CHECK(workload.ok());
  return std::move(workload).value();
}

void ReportTheoremTable() {
  TablePrinter table({"experiment", "hypotheses", "checked execs",
                      "violations", "paper expectation"});

  {  // T1: fixed structure + PWSR.
    Workload w = TheoremWorkload(0.0, false, 21);
    HypothesisFilter filter;
    filter.require_pwsr = true;
    filter.require_fixed_structure = true;
    Rng rng(21);
    auto outcome = SearchForViolations(w.db, *w.ic, w.ProgramPtrs(), filter,
                                       rng, 400);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T1 (Thm 1)", "PWSR + fixed-structure",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "0 violations"});
  }
  {  // T2: PWSR + DR with branching programs.
    Workload w = TheoremWorkload(0.4, false, 22);
    HypothesisFilter filter;
    filter.require_pwsr = true;
    filter.require_delayed_read = true;
    Rng rng(22);
    auto outcome = SearchForViolations(w.db, *w.ic, w.ProgramPtrs(), filter,
                                       rng, 400);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T2 (Thm 2)", "PWSR + DR (arbitrary programs)",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "0 violations"});
  }
  {  // T3: PWSR + acyclic DAG.
    Workload w = TheoremWorkload(0.4, true, 23);
    HypothesisFilter filter;
    filter.require_pwsr = true;
    filter.require_dag_acyclic = true;
    Rng rng(23);
    auto outcome = SearchForViolations(w.db, *w.ic, w.ProgramPtrs(), filter,
                                       rng, 400);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T3 (Thm 3)", "PWSR + acyclic DAG(S, IC)",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "0 violations"});
  }
  {  // Hypotheses dropped: exhaustive Example 2 search, PWSR only.
    auto ex = paper::Example2::Make();
    std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
    HypothesisFilter filter;
    filter.require_pwsr = true;
    auto outcome = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                             {ex.ds0}, filter, 100000);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T-neg (Ex. 2)", "PWSR only (no theorem hypothesis)",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "> 0 violations"});
  }
  {  // Example 5: everything but disjointness.
    auto ex = paper::Example5::Make();
    std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2,
                                                    &ex.tp3};
    HypothesisFilter filter;
    filter.require_pwsr = true;
    filter.require_delayed_read = true;
    filter.require_dag_acyclic = true;
    filter.require_fixed_structure = true;
    auto outcome = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                             {ex.ds0}, filter, 100000);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T-neg (Ex. 5)", "all hypotheses, conjuncts overlap",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "> 0 violations"});
  }

  {  // Scaled anomaly workload (Example 2 × 2 pairs), original programs.
    auto w = MakeAnomalyWorkload(/*pairs=*/2, /*fixed_structure=*/false);
    NSE_CHECK(w.ok());
    HypothesisFilter filter;
    filter.require_pwsr = true;
    Rng rng(24);
    auto outcome = SearchForViolations(w->db, *w->ic, w->ProgramPtrs(),
                                       filter, rng, 600);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T-neg (anomaly x2)", "PWSR only, Example-2 programs",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "> 0 violations"});
  }
  {  // Same workload with the §3.1 repairs: Theorem 1 regime.
    auto w = MakeAnomalyWorkload(/*pairs=*/2, /*fixed_structure=*/true);
    NSE_CHECK(w.ok());
    HypothesisFilter filter;
    filter.require_pwsr = true;
    filter.require_fixed_structure = true;
    Rng rng(25);
    auto outcome = SearchForViolations(w->db, *w->ic, w->ProgramPtrs(),
                                       filter, rng, 600);
    NSE_CHECK(outcome.ok());
    table.AddRow({"T1 (anomaly repaired)", "PWSR + fixed-structure repairs",
                  StrCat(outcome->checked), StrCat(outcome->violations),
                  "0 violations"});
  }

  std::cout << "\n=== T1-T3: theorem validation by violation search ===\n"
            << table.Render() << "\n";
}

// ---- benchmarks ----

void BM_ViolationSearchTheorem1(benchmark::State& state) {
  Workload w = TheoremWorkload(0.0, false, 31);
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(31);
  for (auto _ : state) {
    auto outcome =
        SearchForViolations(w.db, *w.ic, w.ProgramPtrs(), filter, rng, 10);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ViolationSearchTheorem1);

void BM_CertifyExecution(benchmark::State& state) {
  Workload w = TheoremWorkload(0.0, false, 33);
  ConsistencyChecker checker(w.db, *w.ic);
  Rng rng(33);
  auto initial = checker.SampleConsistentState(rng);
  NSE_CHECK(initial.ok());
  auto choices = RandomChoices(w.db, w.ProgramPtrs(), *initial, rng);
  NSE_CHECK(choices.ok());
  auto run = Interleave(w.db, w.ProgramPtrs(), *initial, *choices);
  NSE_CHECK(run.ok());
  auto programs = w.ProgramPtrs();
  for (auto _ : state) {
    TheoremCertificate cert = Certify(w.db, *w.ic, run->schedule, &programs);
    benchmark::DoNotOptimize(cert);
  }
}
BENCHMARK(BM_CertifyExecution);

void BM_StructureAnalysisExact(benchmark::State& state) {
  auto ex = paper::Example2::Make();
  for (auto _ : state) {
    StructureAnalysis analysis = AnalyzeStructure(ex.db, ex.tp1_fixed);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetLabel("A2: exact path exploration");
}
BENCHMARK(BM_StructureAnalysisExact);

void BM_StructureAnalysisRandomized(benchmark::State& state) {
  auto ex = paper::Example2::Make();
  Rng rng(5);
  size_t trials = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result =
        TestFixedStructureRandomized(ex.db, ex.tp1_fixed, rng, trials);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("A2: randomized replay");
  state.counters["trials"] = static_cast<double>(trials);
}
BENCHMARK(BM_StructureAnalysisRandomized)->Arg(8)->Arg(64)->Arg(512);

void BM_StrongCorrectnessCheck(benchmark::State& state) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  NSE_CHECK(run.ok());
  ConsistencyChecker checker(ex.db, *ex.ic);
  for (auto _ : state) {
    auto report = CheckExecution(checker, run->schedule, ex.ds0);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_StrongCorrectnessCheck);

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  nse::ReportTheoremTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
