// Experiments C1–C3 (DESIGN.md): schedule-class checker costs and census.
//
// C1 — PWSR (Definition 2) vs plain CSR checking as schedules grow.
// C2 — DR / ACA / strict checking, plus a census: what fraction of random
//      schedules falls into each class (the class hierarchy made tangible).
// C3 — data access graph construction + acyclicity.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/logging.h"
#include "nse/nse.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

/// A random schedule over `txns` transactions and `items` items.
Schedule RandomSchedule(Rng& rng, size_t num_ops, size_t txns, size_t items) {
  OpSequence ops;
  ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    TxnId txn = static_cast<TxnId>(rng.NextBelow(txns) + 1);
    ItemId item = static_cast<ItemId>(rng.NextBelow(items));
    if (rng.NextBool(0.5)) {
      ops.push_back(Operation::Write(txn, item, Value(static_cast<int64_t>(i))));
    } else {
      ops.push_back(Operation::Read(txn, item, Value(0)));
    }
  }
  return Schedule(std::move(ops));
}

/// A database + IC with `conjuncts` equal-pair partitions.
struct CheckScenario {
  Database db;
  std::optional<IntegrityConstraint> ic;

  static CheckScenario Make(size_t conjuncts) {
    CheckScenario sc;
    std::vector<Formula> formulas;
    for (size_t e = 0; e < conjuncts; ++e) {
      auto x = sc.db.AddItem(StrCat("c", e, "_x"), Domain::IntRange(-8, 8));
      auto y = sc.db.AddItem(StrCat("c", e, "_y"), Domain::IntRange(-8, 8));
      NSE_CHECK(x.ok() && y.ok());
      formulas.push_back(Eq(Var(*x), Var(*y)));
    }
    auto ic = IntegrityConstraint::FromConjuncts(sc.db, std::move(formulas));
    NSE_CHECK(ic.ok());
    sc.ic = std::move(ic).value();
    return sc;
  }
};

void BM_CsrCheck(benchmark::State& state) {
  size_t num_ops = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Schedule s = RandomSchedule(rng, num_ops, /*txns=*/8, /*items=*/16);
  for (auto _ : state) {
    bool csr = IsConflictSerializable(s);
    benchmark::DoNotOptimize(csr);
  }
  state.counters["ops"] = static_cast<double>(num_ops);
}
BENCHMARK(BM_CsrCheck)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PwsrCheck(benchmark::State& state) {
  size_t num_ops = static_cast<size_t>(state.range(0));
  size_t conjuncts = static_cast<size_t>(state.range(1));
  CheckScenario sc = CheckScenario::Make(conjuncts);
  Rng rng(42);
  Schedule s = RandomSchedule(rng, num_ops, 8, sc.db.num_items());
  for (auto _ : state) {
    PwsrReport report = CheckPwsr(s, *sc.ic);
    benchmark::DoNotOptimize(report);
  }
  state.counters["ops"] = static_cast<double>(num_ops);
  state.counters["conjuncts"] = static_cast<double>(conjuncts);
}
BENCHMARK(BM_PwsrCheck)
    ->Args({100, 2})
    ->Args({1000, 2})
    ->Args({1000, 8})
    ->Args({1000, 32})
    ->Args({10000, 8});

void BM_DrCheck(benchmark::State& state) {
  size_t num_ops = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Schedule s = RandomSchedule(rng, num_ops, 8, 16);
  for (auto _ : state) {
    bool dr = IsDelayedRead(s);
    benchmark::DoNotOptimize(dr);
  }
}
BENCHMARK(BM_DrCheck)->Arg(100)->Arg(1000)->Arg(10000);

void BM_StrictCheck(benchmark::State& state) {
  size_t num_ops = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Schedule s = RandomSchedule(rng, num_ops, 8, 16);
  for (auto _ : state) {
    bool strict = IsStrict(s);
    benchmark::DoNotOptimize(strict);
  }
}
BENCHMARK(BM_StrictCheck)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DagBuild(benchmark::State& state) {
  size_t num_ops = static_cast<size_t>(state.range(0));
  size_t conjuncts = static_cast<size_t>(state.range(1));
  CheckScenario sc = CheckScenario::Make(conjuncts);
  Rng rng(9);
  Schedule s = RandomSchedule(rng, num_ops, 8, sc.db.num_items());
  for (auto _ : state) {
    DataAccessGraph g = DataAccessGraph::Build(s, *sc.ic);
    benchmark::DoNotOptimize(g.IsAcyclic());
  }
}
BENCHMARK(BM_DagBuild)->Args({1000, 4})->Args({1000, 16})->Args({10000, 16});

void ReportClassCensus() {
  // C2 census: fraction of random schedules in each class, by op count.
  // The hierarchy CSR ⊆ PWSR and strict ⊆ DR must show in the rates.
  TablePrinter table(
      {"ops/schedule", "samples", "CSR %", "PWSR %", "DR %", "strict %"});
  CheckScenario sc = CheckScenario::Make(4);
  Rng rng(1234);
  for (size_t num_ops : {6, 10, 16, 24}) {
    int csr = 0, pwsr = 0, dr = 0, strict = 0;
    constexpr int kSamples = 2000;
    for (int i = 0; i < kSamples; ++i) {
      Schedule s = RandomSchedule(rng, num_ops, 4, sc.db.num_items());
      // One shared context per schedule: all four class probes reuse the
      // same memoized artifacts.
      AnalysisContext ctx(*sc.ic, s);
      TraceClassification cls = ClassifyTrace(ctx);
      if (cls.csr) ++csr;
      if (cls.pwsr.value_or(false)) ++pwsr;
      if (cls.delayed_read) ++dr;
      if (cls.strict) ++strict;
    }
    auto pct = [&](int n) {
      return FormatDouble(100.0 * n / kSamples, 1);
    };
    table.AddRow({StrCat(num_ops), StrCat(kSamples), pct(csr), pct(pwsr),
                  pct(dr), pct(strict)});
  }
  std::cout << "\n=== C2: schedule class census (random schedules) ===\n"
            << table.Render()
            << "(expected shape: PWSR >= CSR and DR >= strict on every row; "
               "all rates fall as schedules grow)\n\n";
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  nse::ReportClassCensus();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
