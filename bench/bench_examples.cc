// Experiments E1–E5 (DESIGN.md): regenerate every worked example of the
// paper through the full pipeline and report the paper-vs-measured rows,
// then time the pipeline pieces with google-benchmark.

#include <benchmark/benchmark.h>

#include <iostream>

#include "nse/nse.h"
#include "paper/paper_examples.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

void ReportExampleTable() {
  TablePrinter table({"exp", "paper expectation", "measured", "match"});

  {  // E1: Example 1 notation & final state.
    auto ex = paper::Example1::Make();
    std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
    auto run = Interleave(ex.db, programs, ex.ds1, ex.choices);
    bool ok = run.ok() && run->final_state == ex.ds2_expected &&
              run->schedule.ToString(ex.db) ==
                  "r1(a, 0), r2(a, 0), w2(d, 0), r1(c, 5), w1(b, 5)";
    table.AddRow({"E1", "S and DS2 of Example 1",
                  run.ok() ? run->schedule.ToString(ex.db) : "error",
                  ok ? "yes" : "NO"});
  }
  {  // E2: PWSR but not strongly correct.
    auto ex = paper::Example2::Make();
    std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
    auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
    ConsistencyChecker checker(ex.db, *ex.ic);
    bool pwsr = run.ok() && CheckPwsr(run->schedule, *ex.ic).is_pwsr;
    auto report = CheckExecution(checker, run->schedule, ex.ds0);
    bool violated = report.ok() && !report->strongly_correct;
    table.AddRow({"E2", "PWSR holds; strong correctness fails",
                  StrCat("pwsr=", pwsr ? "yes" : "no",
                         " violated=", violated ? "yes" : "no"),
                  (pwsr && violated) ? "yes" : "NO"});
  }
  {  // E3: Lemma 3 conclusion fails for non-fixed TP1.
    auto ex = paper::Example2::Make();
    std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
    auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
    ConsistencyChecker checker(ex.db, *ex.ic);
    DataSet d = ex.db.SetOf({"a", "b"});
    DbState conclusion = run->final_state.Restrict(d);
    auto consistent = checker.IsConsistent(conclusion);
    bool ok = consistent.ok() && !*consistent &&
              !AnalyzeStructure(ex.db, ex.tp1).fixed;
    table.AddRow({"E3", "DS2^{d-WS(after)} inconsistent; TP1 not fixed",
                  conclusion.ToString(ex.db), ok ? "yes" : "NO"});
  }
  {  // E4: joint consistency precondition of Lemma 7.
    auto ex = paper::Example4::Make();
    auto run = RunInIsolation(ex.db, ex.tp1, 1, ex.ds1);
    ConsistencyChecker checker(ex.db, *ex.ic);
    auto joint = DbState::Union(ex.ds1.Restrict(ex.d), run->txn.ReadMap());
    bool ok = joint.ok() && !*checker.IsConsistent(*joint) &&
              *checker.IsConsistent(ex.ds1.Restrict(ex.d)) &&
              *checker.IsConsistent(run->txn.ReadMap());
    table.AddRow({"E4",
                  "DS1^d, read(T1) consistent; union inconsistent",
                  joint.ok() ? joint->ToString(ex.db) : "undefined",
                  ok ? "yes" : "NO"});
  }
  {  // E5: overlap defeats everything.
    auto ex = paper::Example5::Make();
    std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2,
                                                    &ex.tp3};
    auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
    ConsistencyChecker checker(ex.db, *ex.ic);
    bool hypotheses = run.ok() && CheckPwsr(run->schedule, *ex.ic).is_pwsr &&
                      IsDelayedRead(run->schedule) &&
                      DataAccessGraph::Build(run->schedule, *ex.ic)
                          .IsAcyclic();
    auto consistent = checker.IsConsistent(run->final_state);
    bool ok = hypotheses && consistent.ok() && !*consistent &&
              !ex.ic->disjoint();
    table.AddRow({"E5",
                  "all hypotheses hold, overlap breaks consistency",
                  run->final_state.ToString(ex.db), ok ? "yes" : "NO"});
  }

  std::cout << "\n=== E1-E5: paper example reproduction ===\n"
            << table.Render() << "\n";
}

// ---- timing benchmarks ----

void BM_Example1Pipeline(benchmark::State& state) {
  auto ex = paper::Example1::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  for (auto _ : state) {
    auto run = Interleave(ex.db, programs, ex.ds1, ex.choices);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_Example1Pipeline);

void BM_Example2FullCertification(benchmark::State& state) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ConsistencyChecker checker(ex.db, *ex.ic);
  for (auto _ : state) {
    TheoremCertificate cert =
        Certify(ex.db, *ex.ic, run->schedule, &programs);
    auto report = CheckExecution(checker, run->schedule, ex.ds0);
    benchmark::DoNotOptimize(cert);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Example2FullCertification);

void BM_Example5Interleave(benchmark::State& state) {
  auto ex = paper::Example5::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2, &ex.tp3};
  for (auto _ : state) {
    auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_Example5Interleave);

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  nse::ReportExampleTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
