// Wall-clock scaling of the multithreaded engine: committed transactions
// per second vs worker-thread count, under strict 2PL, timestamp ordering
// and SGT, on a low-contention and a hot-spot workload. Each operation
// carries simulated I/O latency (op_latency_micros) so scaling is visible
// even on small hosts — worker sleeps overlap across threads regardless
// of core count, exactly like real I/O waits; on a many-core machine the
// same harness additionally overlaps the CPU work.
//
// Wall-clock rows are inherently noisy, so the JSON guards only the exact
// `completed` counter and the tolerance-floored `speedup_vs_sequential`
// ratio (threads-N throughput over the same policy's threads-1 run);
// `txns_per_s` and `wall_ms` are informational. Every run's trace is
// differentially checked (CSR via the independent checker) and residual
// policy state must be zero — the bench doubles as a stress harness.
//
// --smoke runs tiny configurations with the checks and no JSON; the full
// run writes BENCH_engine.json (override the path with the last argument).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/serializability.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "engine/engine.h"
#include "scheduler/metrics.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

struct BenchCase {
  std::string name;
  PartitionedWorkloadConfig config;
  bool low_contention = false;  // rows feeding the scaling acceptance check
};

struct Row {
  std::string workload;
  std::string policy;
  size_t txns = 0;
  size_t threads = 0;
  uint64_t completed = 0;
  uint64_t wait_events = 0;
  uint64_t rollbacks = 0;  // aborts + restarts + wounds
  double wall_ms = 0;
  double txns_per_s = 0;
  double speedup_vs_sequential = 1.0;
  // Only low-contention rows emit the tolerance-guarded speedup field:
  // that is the workload the scaling promise is about. Hot-spot speedups
  // thrash nondeterministically (TO especially) and stay informational.
  bool guard_speedup = false;
};

std::unique_ptr<SchedulerPolicy> MakePolicy(const std::string& which,
                                            size_t num_txns) {
  if (which == "strict-2pl") {
    return std::make_unique<StrictTwoPhaseLocking>();
  }
  if (which == "to") {
    return std::make_unique<TimestampOrderingPolicy>(num_txns);
  }
  NSE_CHECK_MSG(which == "sgt", "unknown policy %s", which.c_str());
  return std::make_unique<SgtPolicy>(num_txns);
}

/// One engine run with the differential and residual-state checks the
/// tick-simulator benches apply — under real threads here.
EngineResult RunChecked(const std::string& policy_name,
                        const Workload& workload,
                        const EngineConfig& config) {
  auto policy = MakePolicy(policy_name, workload.scripts.size());
  auto result = RunEngine(*policy, workload.scripts, config);
  NSE_CHECK_MSG(result.ok(), "engine run failed under %s at %zu threads: %s",
                policy_name.c_str(), config.threads,
                result.status().ToString().c_str());
  NSE_CHECK_MSG(result->completed == workload.scripts.size(),
                "%s at %zu threads completed %llu of %zu txns",
                policy_name.c_str(), config.threads,
                static_cast<unsigned long long>(result->completed),
                workload.scripts.size());
  NSE_CHECK_MSG(IsConflictSerializable(result->schedule),
                "%s at %zu threads emitted a non-CSR trace",
                policy_name.c_str(), config.threads);
  return *std::move(result);
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  using namespace nse;
  bool smoke = false;
  std::string json_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  const std::vector<std::string> policies = {"strict-2pl", "to", "sgt"};

  auto make_case = [&](std::string name, size_t txns, size_t partitions,
                       size_t per_txn, double hotspot, uint64_t seed,
                       bool low_contention) {
    BenchCase c;
    c.name = std::move(name);
    c.config.num_partitions = partitions;
    c.config.items_per_partition = 2;
    c.config.num_txns = smoke ? std::min<size_t>(txns, 6) : txns;
    c.config.partitions_per_txn = per_txn;
    c.config.cross_read_probability = 0.2;
    c.config.hotspot_probability = hotspot;
    c.config.seed = seed;
    c.low_contention = low_contention;
    return c;
  };

  // low_contention: 16 txns spread over 32 partitions — conflicts are
  // rare, so committed-txns/sec should scale with workers overlapping
  // their per-op latency. hotspot concentrates 60% of accesses on one
  // partition — scaling flattens but safety and forward progress must
  // hold under the contention.
  std::vector<BenchCase> cases = {
      make_case("low_contention", 16, 32, 3, 0.0, 7, /*low_contention=*/true),
      make_case("hotspot_60", 16, 8, 3, 0.6, 11, /*low_contention=*/false),
  };

  EngineConfig base;
  base.wait_timeout_micros = smoke ? 100 : 200;
  base.backoff_unit_micros = smoke ? 5 : 20;
  // The simulated per-op I/O (sleep, overlappable across workers): the
  // lever that makes thread scaling measurable on any host.
  base.op_latency_micros = smoke ? 50 : 400;

  TablePrinter table({"workload", "policy", "threads", "completed",
                      "wall_ms", "txns_per_s", "speedup", "waits",
                      "rollbacks"});
  std::vector<Row> rows;
  bool low_contention_scaled = false;

  for (const BenchCase& c : cases) {
    auto workload = MakePartitionedWorkload(c.config);
    NSE_CHECK_MSG(workload.ok(), "workload generation failed: %s",
                  workload.status().ToString().c_str());
    for (const std::string& policy : policies) {
      double sequential_tps = 0;
      for (size_t threads : thread_counts) {
        EngineConfig config = base;
        config.threads = threads;
        EngineResult result = RunChecked(policy, *workload, config);

        Row row;
        row.workload = c.name;
        row.policy = policy;
        row.txns = workload->scripts.size();
        row.threads = threads;
        row.completed = result.completed;
        row.wait_events = result.wait_events;
        row.rollbacks = result.aborts + result.restarts + result.wounds;
        row.wall_ms = static_cast<double>(result.wall_micros) / 1000.0;
        row.txns_per_s = result.throughput_tps;
        if (threads == 1) sequential_tps = result.throughput_tps;
        row.speedup_vs_sequential =
            sequential_tps == 0 ? 1.0
                                : result.throughput_tps / sequential_tps;
        row.guard_speedup = c.low_contention;
        if (c.low_contention && threads == 4 &&
            row.speedup_vs_sequential > 1.0) {
          low_contention_scaled = true;
        }
        rows.push_back(row);
        table.AddRow({row.workload, row.policy, StrCat(row.threads),
                      StrCat(row.completed), FormatDouble(row.wall_ms, 2),
                      FormatDouble(row.txns_per_s, 1),
                      FormatDouble(row.speedup_vs_sequential, 2),
                      StrCat(row.wait_events), StrCat(row.rollbacks)});
      }
    }
  }

  std::cout << "\n=== Engine wall-clock scaling (committed txns/sec vs "
               "worker threads) ===\n"
            << table.Render()
            << "(per-op latency " << base.op_latency_micros
            << "us simulated I/O; sleeps overlap across workers, so "
               "speedup_vs_sequential tracks admission concurrency, not "
               "core count)\n";

  if (!smoke) {
    NSE_CHECK_MSG(low_contention_scaled,
                  "the engine did not scale past 1x committed-txns/sec at "
                  "4 threads on the low-contention workload");
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"engine\",\n  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          json,
          "    {\"workload\": \"%s\", \"policy\": \"%s\", \"txns\": %zu, "
          "\"threads\": %zu, \"completed\": %llu, ",
          row.workload.c_str(), row.policy.c_str(), row.txns, row.threads,
          static_cast<unsigned long long>(row.completed));
      if (row.guard_speedup) {
        std::fprintf(json, "\"speedup_vs_sequential\": %.3f, ",
                     row.speedup_vs_sequential);
      }
      std::fprintf(json, "\"txns_per_s\": %.1f, \"wall_ms\": %.3f}%s\n",
                   row.txns_per_s, row.wall_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "baseline written to " << json_path << "\n";
  }
  return 0;
}
