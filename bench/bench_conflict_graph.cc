// Per-tick cost of cycle detection over a waits-for / conflict graph: the
// legacy path (rebuild a ConflictGraph from the current edge set and run
// the batch DFS on every stall tick — what the simulator did before PR 3)
// vs. the incremental path (one persistent Pearce–Kelly graph, per-tick
// blocker-set diffs, O(1) cycle queries — WaitsForTracker).
//
// Workloads:
//  * stall ticks — n transactions, each with a slowly mutating blocker set
//    (the simulator's stall regime: consecutive ticks mostly identical).
//    Cycles that form are resolved by aborting the max-id transaction on
//    the witness, exactly like the simulator. The 64-txn row is the
//    reference configuration (ISSUE 3 targets >= 5x per tick on it).
//  * insert+query — a growing conflict graph asked "acyclic?" after every
//    insertion (the analysis-side shape: each AddEdge invalidates the
//    legacy topo cache, so every query pays O(V+E); the online order pays
//    O(affected region) once at insert).
//  * dense build — ConflictGraph::Build's bitset sweep vs the reference
//    vector sweep (BuildReference) on a many-txns/few-items schedule, with
//    a bit-identical-graph differential check before timing.
//
// Both modes run the same deterministic edge stream (seeded Rng); the
// incremental verdicts are NSE_CHECKed against the batch DFS reference on
// every tick, so the bench doubles as a differential test. --smoke runs
// tiny configurations (parity only, no JSON); the full run writes
// BENCH_conflict_graph.json (override the path with the last argument).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/conflict_graph.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "scheduler/metrics.h"
#include "scheduler/waits_for.h"

namespace nse {
namespace {

/// Deterministic evolution of per-txn blocker sets, shared by both modes.
/// Each tick mutates a few transactions' blocker sets; the consumer decides
/// what a "cycle found" costs (legacy rebuild+DFS vs incremental diff).
struct StallWorkload {
  size_t num_txns;
  size_t ticks;
  double mutate_probability;  // per txn per tick
  uint64_t seed;
};

std::vector<TxnId> DrawBlockers(Rng& rng, TxnId txn, size_t num_txns) {
  // 0-3 blockers, biased toward neighbours (lock queues are local).
  std::vector<TxnId> blockers;
  size_t count = rng.NextBelow(4);
  for (size_t i = 0; i < count; ++i) {
    TxnId blocker =
        1 + static_cast<TxnId>(
                (txn - 1 + 1 + rng.NextBelow(std::min<size_t>(num_txns, 8))) %
                num_txns);
    if (blocker != txn) blockers.push_back(blocker);
  }
  return blockers;
}

struct StallStats {
  uint64_t cycles_resolved = 0;
  uint64_t edge_updates = 0;  // incremental only: graph mutations performed
};

/// Legacy per-tick path: rebuild the graph from the live blocker sets and
/// run the batch DFS (FindCycle) — the pre-PR-3 simulator stall tick.
double RunLegacy(const StallWorkload& w, StallStats& stats) {
  Rng rng(w.seed);
  std::vector<std::vector<TxnId>> waits(w.num_txns + 1);
  std::vector<TxnId> ids;
  for (TxnId id = 1; id <= w.num_txns; ++id) ids.push_back(id);
  auto start = std::chrono::steady_clock::now();
  for (size_t tick = 0; tick < w.ticks; ++tick) {
    for (TxnId txn = 1; txn <= w.num_txns; ++txn) {
      if (rng.NextDouble() < w.mutate_probability) {
        waits[txn] = DrawBlockers(rng, txn, w.num_txns);
      }
    }
    ConflictGraph graph(ids);
    for (TxnId txn = 1; txn <= w.num_txns; ++txn) {
      for (TxnId blocker : waits[txn]) graph.AddEdge(txn, blocker);
    }
    auto cycle = graph.FindCycle();
    if (cycle.has_value()) {
      TxnId victim = *std::max_element(cycle->begin(), cycle->end());
      waits[victim].clear();
      for (auto& set : waits) {
        set.erase(std::remove(set.begin(), set.end(), victim), set.end());
      }
      ++stats.cycles_resolved;
    }
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Incremental path: one persistent tracker, per-tick diffs, O(1) query.
/// When `check` is set, every tick's verdict is cross-checked against a
/// freshly built batch graph + DFS (the reference implementation).
double RunIncremental(const StallWorkload& w, StallStats& stats, bool check) {
  Rng rng(w.seed);
  std::vector<std::vector<TxnId>> waits(w.num_txns + 1);
  WaitsForTracker tracker;
  tracker.EnsureTxns(w.num_txns);
  auto start = std::chrono::steady_clock::now();
  for (size_t tick = 0; tick < w.ticks; ++tick) {
    for (TxnId txn = 1; txn <= w.num_txns; ++txn) {
      if (rng.NextDouble() < w.mutate_probability) {
        waits[txn] = DrawBlockers(rng, txn, w.num_txns);
        tracker.SetWaits(txn, waits[txn]);
      }
    }
    bool cyclic = tracker.has_cycle();
    if (check) {
      std::vector<TxnId> ids;
      for (TxnId id = 1; id <= w.num_txns; ++id) ids.push_back(id);
      ConflictGraph reference(ids);
      for (TxnId txn = 1; txn <= w.num_txns; ++txn) {
        for (TxnId blocker : waits[txn]) {
          if (blocker != txn) reference.AddEdge(txn, blocker);
        }
      }
      NSE_CHECK_MSG(reference.FindCycle().has_value() == cyclic,
                    "incremental verdict diverged from DFS at tick %zu",
                    tick);
    }
    if (cyclic) {
      const std::vector<TxnId>& cycle = *tracker.cycle();
      TxnId victim = *std::max_element(cycle.begin(), cycle.end());
      waits[victim].clear();
      for (auto& set : waits) {
        set.erase(std::remove(set.begin(), set.end(), victim), set.end());
      }
      tracker.OnResolved(victim);
      ++stats.cycles_resolved;
    }
  }
  auto end = std::chrono::steady_clock::now();
  stats.edge_updates = tracker.edges_added() + tracker.edges_removed();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Insert+query: every insertion followed by an acyclicity query.
double RunInsertQuery(size_t num_txns, size_t edges, uint64_t seed,
                      bool incremental, uint64_t& cyclic_at) {
  Rng rng(seed);
  std::vector<TxnId> ids;
  for (TxnId id = 1; id <= num_txns; ++id) ids.push_back(id);
  ConflictGraph graph(std::move(ids), incremental ? CycleMode::kIncremental
                                                  : CycleMode::kBatch);
  cyclic_at = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < edges; ++i) {
    uint32_t from = static_cast<uint32_t>(rng.NextBelow(num_txns));
    uint32_t to = static_cast<uint32_t>(rng.NextBelow(num_txns));
    if (from == to) continue;
    graph.AddEdgeByIndex(from, to);
    if (!graph.IsAcyclic() && cyclic_at == 0) cyclic_at = i + 1;
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct Row {
  std::string workload;
  size_t txns = 0;
  size_t ticks = 0;  // stall ticks, or inserted edges
  double legacy_ms = 0;
  double incremental_ms = 0;
  double legacy_per_tick_us = 0;
  double incremental_per_tick_us = 0;
  double speedup = 0;
  uint64_t cycles_resolved = 0;
  uint64_t edge_updates = 0;
};

double BestOf(int reps, const std::function<double()>& run) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    double ms = run();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  using namespace nse;
  bool smoke = false;
  std::string json_path = "BENCH_conflict_graph.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const int reps = smoke ? 1 : 3;

  std::vector<StallWorkload> stalls =
      smoke ? std::vector<StallWorkload>{{16, 200, 0.05, 7},
                                         {64, 100, 0.05, 11}}
            : std::vector<StallWorkload>{{64, 20000, 0.02, 7},
                                         {256, 8000, 0.02, 11}};

  TablePrinter table({"workload", "txns", "ticks", "legacy us/tick",
                      "incr us/tick", "speedup", "cycles"});
  std::vector<Row> rows;

  for (const StallWorkload& w : stalls) {
    // Parity first (always): the incremental verdict must match the batch
    // DFS on every tick of the stream.
    StallStats parity;
    RunIncremental(w, parity, /*check=*/true);

    StallStats legacy_stats;
    StallStats incr_stats;
    double legacy_ms = BestOf(reps, [&] {
      legacy_stats = StallStats();
      return RunLegacy(w, legacy_stats);
    });
    double incr_ms = BestOf(reps, [&] {
      incr_stats = StallStats();
      return RunIncremental(w, incr_stats, /*check=*/false);
    });
    NSE_CHECK_MSG(legacy_stats.cycles_resolved > 0,
                  "stall workload produced no deadlocks — not representative");

    Row row;
    row.workload = StrCat("stall_", w.num_txns, "txn");
    row.txns = w.num_txns;
    row.ticks = w.ticks;
    row.legacy_ms = legacy_ms;
    row.incremental_ms = incr_ms;
    row.legacy_per_tick_us = legacy_ms * 1000.0 / w.ticks;
    row.incremental_per_tick_us = incr_ms * 1000.0 / w.ticks;
    row.speedup = incr_ms == 0 ? 0 : legacy_ms / incr_ms;
    row.cycles_resolved = incr_stats.cycles_resolved;
    row.edge_updates = incr_stats.edge_updates;
    rows.push_back(row);
    table.AddRow({row.workload, StrCat(row.txns), StrCat(row.ticks),
                  FormatDouble(row.legacy_per_tick_us, 3),
                  FormatDouble(row.incremental_per_tick_us, 3),
                  StrCat(FormatDouble(row.speedup, 2), "x"),
                  StrCat(row.cycles_resolved)});
  }

  struct InsertCase {
    size_t txns;
    size_t edges;
  };
  std::vector<InsertCase> inserts =
      smoke ? std::vector<InsertCase>{{32, 200}}
            : std::vector<InsertCase>{{256, 4000}};
  for (const InsertCase& c : inserts) {
    uint64_t cyclic_batch = 0;
    uint64_t cyclic_incr = 0;
    double legacy_ms = BestOf(reps, [&] {
      return RunInsertQuery(c.txns, c.edges, 23, false, cyclic_batch);
    });
    double incr_ms = BestOf(reps, [&] {
      return RunInsertQuery(c.txns, c.edges, 23, true, cyclic_incr);
    });
    // Differential contract: both modes report the cycle on the same edge.
    NSE_CHECK_MSG(cyclic_batch == cyclic_incr,
                  "first cyclic insertion differs: batch %llu vs incr %llu",
                  static_cast<unsigned long long>(cyclic_batch),
                  static_cast<unsigned long long>(cyclic_incr));

    Row row;
    row.workload = StrCat("insert_query_", c.txns, "txn");
    row.txns = c.txns;
    row.ticks = c.edges;
    row.legacy_ms = legacy_ms;
    row.incremental_ms = incr_ms;
    row.legacy_per_tick_us = legacy_ms * 1000.0 / c.edges;
    row.incremental_per_tick_us = incr_ms * 1000.0 / c.edges;
    row.speedup = incr_ms == 0 ? 0 : legacy_ms / incr_ms;
    rows.push_back(row);
    table.AddRow({row.workload, StrCat(row.txns), StrCat(row.ticks),
                  FormatDouble(row.legacy_per_tick_us, 3),
                  FormatDouble(row.incremental_per_tick_us, 3),
                  StrCat(FormatDouble(row.speedup, 2), "x"), "-"});
  }

  // Dense-item builds: many txns hammering a handful of items — the worst
  // case for the reference vector sweep (every access rescans long
  // reader/writer histories) and the target case for the bitset planes
  // (word-parallel novelty masks + first-occurrence emission). Also the
  // FlatAdjacency stress shape: a few hundred nodes with fat, hot regions.
  struct DenseCase {
    size_t txns;
    size_t items;
    size_t ops;
  };
  std::vector<DenseCase> dense_cases =
      smoke ? std::vector<DenseCase>{{48, 2, 400}}
            : std::vector<DenseCase>{{256, 4, 6000}};
  for (const DenseCase& c : dense_cases) {
    Rng rng(31);
    OpSequence ops;
    for (size_t i = 0; i < c.ops; ++i) {
      TxnId txn = static_cast<TxnId>(1 + rng.NextBelow(c.txns));
      ItemId item = static_cast<ItemId>(rng.NextBelow(c.items));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(0)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule schedule(std::move(ops));

    // Differential contract first: the dense fast path must produce the
    // bit-identical graph (same edges in the same order).
    {
      ConflictGraph dense = ConflictGraph::Build(schedule);
      ConflictGraph reference = ConflictGraph::BuildReference(schedule);
      NSE_CHECK_MSG(dense.Edges() == reference.Edges(),
                    "dense build diverged from the reference sweep");
      NSE_CHECK_MSG(dense.ToString() == reference.ToString(),
                    "dense build render diverged from the reference sweep");
    }

    double reference_ms = BestOf(reps, [&] {
      auto start = std::chrono::steady_clock::now();
      ConflictGraph g = ConflictGraph::BuildReference(schedule);
      auto end = std::chrono::steady_clock::now();
      NSE_CHECK(g.num_edges() > 0);
      return std::chrono::duration<double, std::milli>(end - start).count();
    });
    double dense_ms = BestOf(reps, [&] {
      auto start = std::chrono::steady_clock::now();
      ConflictGraph g = ConflictGraph::Build(schedule);
      auto end = std::chrono::steady_clock::now();
      NSE_CHECK(g.num_edges() > 0);
      return std::chrono::duration<double, std::milli>(end - start).count();
    });

    Row row;
    row.workload = StrCat("dense_build_", c.txns, "txn_", c.items, "item");
    row.txns = c.txns;
    row.ticks = c.ops;
    row.legacy_ms = reference_ms;
    row.incremental_ms = dense_ms;
    row.legacy_per_tick_us = reference_ms * 1000.0 / c.ops;
    row.incremental_per_tick_us = dense_ms * 1000.0 / c.ops;
    row.speedup = dense_ms == 0 ? 0 : reference_ms / dense_ms;
    rows.push_back(row);
    table.AddRow({row.workload, StrCat(row.txns), StrCat(row.ticks),
                  FormatDouble(row.legacy_per_tick_us, 3),
                  FormatDouble(row.incremental_per_tick_us, 3),
                  StrCat(FormatDouble(row.speedup, 2), "x"), "-"});
  }

  std::cout << "\n=== Conflict graph: incremental (Pearce-Kelly) vs "
               "rebuild+DFS per tick ===\n"
            << table.Render()
            << "(legacy = rebuild graph + batch DFS per tick; incremental = "
               "persistent graph, blocker-set diffs, O(1) cycle query)\n";

  if (smoke) {
    std::cout << "smoke mode: incremental-vs-DFS parity checks passed, "
                 "no baseline written\n";
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"conflict_graph\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        json,
        "    {\"workload\": \"%s\", \"txns\": %zu, \"ticks\": %zu, "
        "\"legacy_ms\": %.3f, \"incremental_ms\": %.3f, "
        "\"legacy_per_tick_us\": %.3f, \"incremental_per_tick_us\": %.3f, "
        "\"speedup\": %.3f, \"cycles_resolved\": %llu, "
        "\"edge_updates\": %llu}%s\n",
        row.workload.c_str(), row.txns, row.ticks, row.legacy_ms,
        row.incremental_ms, row.legacy_per_tick_us,
        row.incremental_per_tick_us, row.speedup,
        static_cast<unsigned long long>(row.cycles_resolved),
        static_cast<unsigned long long>(row.edge_updates),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "baseline written to " << json_path << "\n";
  return 0;
}
