// Experiments F1 and A1 (DESIGN.md): the Lemma 1 oracle.
//
// F1 — restriction-consistency scaling: solver cost vs number of conjuncts,
//      items per conjunct, and domain size.
// A1 — ablation: per-conjunct decomposition (Lemma 1) vs global search.
//      The paper's disjointness assumption is precisely what licenses the
//      decomposition; the ablation quantifies what it buys.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/logging.h"
#include "nse/nse.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

/// Builds l conjuncts ("all equal" per partition) over l*k items with the
/// given integer domain half-width.
struct SolverScenario {
  Database db;
  std::optional<IntegrityConstraint> ic;
  DbState partial;  // one pinned item per conjunct

  static SolverScenario Make(size_t conjuncts, size_t items_per_conjunct,
                             int64_t half_width) {
    SolverScenario sc;
    std::vector<Formula> formulas;
    for (size_t e = 0; e < conjuncts; ++e) {
      std::vector<Formula> eqs;
      ItemId first = 0;
      for (size_t k = 0; k < items_per_conjunct; ++k) {
        auto id = sc.db.AddItem(StrCat("c", e, "_x", k),
                                Domain::IntRange(-half_width, half_width));
        NSE_CHECK(id.ok());
        if (k == 0) first = *id;
        if (k > 0) eqs.push_back(Eq(Var(*id - 1), Var(*id)));
      }
      if (eqs.empty()) eqs.push_back(Ge(Var(first), Const(Value(-half_width))));
      formulas.push_back(And(std::move(eqs)));
      sc.partial.Set(first, Value(0));
    }
    auto ic = IntegrityConstraint::FromConjuncts(sc.db, std::move(formulas));
    NSE_CHECK(ic.ok());
    sc.ic = std::move(ic).value();
    return sc;
  }
};

void BM_RestrictionConsistency(benchmark::State& state) {
  size_t conjuncts = static_cast<size_t>(state.range(0));
  size_t items = static_cast<size_t>(state.range(1));
  int64_t half_width = state.range(2);
  SolverScenario sc = SolverScenario::Make(conjuncts, items, half_width);
  ConsistencyChecker checker(sc.db, *sc.ic);
  for (auto _ : state) {
    auto result = checker.IsConsistent(sc.partial);
    benchmark::DoNotOptimize(result);
  }
  state.counters["conjuncts"] = static_cast<double>(conjuncts);
  state.counters["items/conj"] = static_cast<double>(items);
  state.counters["domain"] = static_cast<double>(2 * half_width + 1);
}
BENCHMARK(BM_RestrictionConsistency)
    ->Args({1, 2, 8})
    ->Args({4, 2, 8})
    ->Args({16, 2, 8})
    ->Args({64, 2, 8})
    ->Args({4, 4, 8})
    ->Args({4, 8, 8})
    ->Args({4, 2, 64})
    ->Args({4, 2, 512});

void BM_DecomposedVsGlobal(benchmark::State& state) {
  size_t conjuncts = static_cast<size_t>(state.range(0));
  bool global = state.range(1) == 1;
  SolverScenario sc = SolverScenario::Make(conjuncts, 3, 8);
  ConsistencyChecker checker(sc.db, *sc.ic);
  for (auto _ : state) {
    auto result = global ? checker.IsConsistentGlobal(sc.partial)
                         : checker.IsConsistent(sc.partial);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(global ? "global" : "lemma1-decomposed");
}
BENCHMARK(BM_DecomposedVsGlobal)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_EnumerateConsistentStates(benchmark::State& state) {
  SolverScenario sc = SolverScenario::Make(3, 2, 4);
  ConsistencyChecker checker(sc.db, *sc.ic);
  for (auto _ : state) {
    auto states = checker.EnumerateConsistentStates(512);
    benchmark::DoNotOptimize(states);
  }
}
BENCHMARK(BM_EnumerateConsistentStates);

void BM_SampleConsistentState(benchmark::State& state) {
  SolverScenario sc = SolverScenario::Make(8, 3, 16);
  ConsistencyChecker checker(sc.db, *sc.ic);
  Rng rng(1);
  for (auto _ : state) {
    auto sample = checker.SampleConsistentState(rng);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_SampleConsistentState);

void ReportLemma1Table() {
  // F1 summary table: search effort with vs without the Lemma 1 split.
  TablePrinter table({"conjuncts", "items/conj", "decomposed nodes",
                      "global nodes", "ratio"});
  for (size_t conjuncts : {2, 4, 8}) {
    SolverScenario sc = SolverScenario::Make(conjuncts, 3, 8);
    ConsistencyChecker checker(sc.db, *sc.ic);
    checker.ResetStats();
    NSE_CHECK(checker.IsConsistent(sc.partial).ok());
    uint64_t decomposed = checker.stats().nodes;
    checker.ResetStats();
    NSE_CHECK(checker.IsConsistentGlobal(sc.partial).ok());
    uint64_t global = checker.stats().nodes;
    table.AddRow({StrCat(conjuncts), "3", StrCat(decomposed), StrCat(global),
                  FormatDouble(static_cast<double>(global) /
                                   static_cast<double>(decomposed == 0
                                                           ? 1
                                                           : decomposed),
                               2)});
  }
  std::cout << "\n=== F1/A1: Lemma 1 decomposition (search nodes, "
               "satisfiable) ===\n"
            << table.Render() << "\n";

  // The decomposition's real payoff shows on *unsatisfiable* instances: an
  // inconsistent conjunct is refuted locally in O(|domain|), while a global
  // search must first enumerate assignments of every conjunct ordered
  // before it.
  TablePrinter hard({"satisfiable conjuncts", "decomposed nodes",
                     "global nodes", "ratio"});
  for (size_t sat_conjuncts : {2, 4, 6}) {
    Database db;
    std::vector<Formula> formulas;
    for (size_t e = 0; e < sat_conjuncts; ++e) {
      auto x = db.AddItem(StrCat("s", e, "_x"), Domain::IntRange(0, 2));
      auto y = db.AddItem(StrCat("s", e, "_y"), Domain::IntRange(0, 2));
      NSE_CHECK(x.ok() && y.ok());
      formulas.push_back(Eq(Var(*x), Var(*y)));
    }
    auto z = db.AddItem("unsat_z", Domain::IntRange(0, 2));
    NSE_CHECK(z.ok());
    formulas.push_back(Gt(Var(*z), Const(Value(2))));  // unsatisfiable
    auto ic = IntegrityConstraint::FromConjuncts(db, std::move(formulas));
    NSE_CHECK(ic.ok());
    ConsistencyChecker checker(db, *ic);
    checker.ResetStats();
    NSE_CHECK(checker.IsConsistent(DbState()).ok());
    uint64_t decomposed = checker.stats().nodes;
    checker.ResetStats();
    NSE_CHECK(checker.IsConsistentGlobal(DbState()).ok());
    uint64_t global = checker.stats().nodes;
    hard.AddRow({StrCat(sat_conjuncts), StrCat(decomposed), StrCat(global),
                 FormatDouble(static_cast<double>(global) /
                                  static_cast<double>(
                                      decomposed == 0 ? 1 : decomposed),
                              1)});
  }
  std::cout << "=== A1: decomposition on unsatisfiable instances ===\n"
            << hard.Render()
            << "(expected shape: the global/decomposed ratio grows "
               "multiplicatively with the satisfiable prefix)\n\n";
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  nse::ReportLemma1Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
