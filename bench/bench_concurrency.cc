// Experiments M1 and M2 (DESIGN.md): the paper's motivating performance
// claims, reproduced on the scheduler substrate.
//
// M1 — CAD long transactions (§1, [11]): strict 2PL holds every lock to
//      transaction end, so long design transactions serialize behind each
//      other; predicate-wise 2PL releases each design partition after its
//      last use. Expected shape: PW-2PL's advantage in wait time/makespan
//      grows with transaction length.
// M2 — MDBS (§4, [4]): sites as conjuncts. Global serializability (one
//      lock scope across sites) vs local serializability only (per-site
//      scopes → PWSR). Expected shape: PW-2PL throughput advantage grows
//      with the number of sites a global transaction touches.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/logging.h"
#include "nse/nse.h"
#include "scheduler/metrics.h"

namespace nse {
namespace {

struct PolicyRun {
  uint64_t makespan;
  uint64_t waits;
  uint64_t aborts;
  double throughput;
};

Result<PolicyRun> RunOnce(SchedulerPolicy& policy,
                          const std::vector<TxnScript>& scripts) {
  NSE_ASSIGN_OR_RETURN(SimResult result, RunSimulation(policy, scripts));
  return PolicyRun{result.makespan, result.total_wait_ticks, result.aborts,
                   result.throughput};
}

void ReportCadTable() {
  // M1: sweep transaction length; fixed 6 txns over 8 partitions.
  TablePrinter table({"ops/txn", "2PL makespan", "PW makespan",
                      "2PL waits", "PW waits", "speedup"});
  for (size_t ops_per_txn : {8, 16, 24, 32, 48, 64}) {
    SeriesSummary s2pl_mk, pw_mk, s2pl_w, pw_w;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto workload =
          MakeCadWorkload(/*num_txns=*/6, ops_per_txn, /*partitions=*/16,
                          seed);
      NSE_CHECK(workload.ok());
      StrictTwoPhaseLocking strict;
      auto strict_run = RunOnce(strict, workload->scripts);
      NSE_CHECK(strict_run.ok());
      PredicatewiseTwoPhaseLocking pw(&*workload->ic);
      auto pw_run = RunOnce(pw, workload->scripts);
      NSE_CHECK(pw_run.ok());
      s2pl_mk.Add(static_cast<double>(strict_run->makespan));
      pw_mk.Add(static_cast<double>(pw_run->makespan));
      s2pl_w.Add(static_cast<double>(strict_run->waits));
      pw_w.Add(static_cast<double>(pw_run->waits));
    }
    table.AddRow({StrCat(ops_per_txn), FormatDouble(s2pl_mk.mean(), 1),
                  FormatDouble(pw_mk.mean(), 1), FormatDouble(s2pl_w.mean(), 1),
                  FormatDouble(pw_w.mean(), 1),
                  FormatDouble(s2pl_mk.mean() /
                                   (pw_mk.mean() == 0 ? 1 : pw_mk.mean()),
                               2)});
  }
  std::cout << "\n=== M1: CAD long transactions — strict 2PL vs PW-2PL ===\n"
            << table.Render()
            << "(paper expectation: PW-2PL wins and its advantage grows "
               "with transaction length)\n\n";
}

void ReportMdbsTable() {
  // M2: sweep sites per global transaction; 3 global + 6 local txns.
  TablePrinter table({"sites/global-txn", "2PL makespan", "PW makespan",
                      "2PL waits", "PW waits", "PW/2PL throughput"});
  for (size_t sites_per_global : {2, 3, 4, 6, 8}) {
    SeriesSummary s2pl_mk, pw_mk, s2pl_w, pw_w, ratio;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto workload = MakeMdbsWorkload(/*num_sites=*/8, /*global_txns=*/3,
                                       /*local_txns=*/6, sites_per_global,
                                       seed);
      NSE_CHECK(workload.ok());
      StrictTwoPhaseLocking strict;
      auto strict_run = RunOnce(strict, workload->scripts);
      NSE_CHECK(strict_run.ok());
      PredicatewiseTwoPhaseLocking pw(&*workload->ic);
      auto pw_run = RunOnce(pw, workload->scripts);
      NSE_CHECK(pw_run.ok());
      s2pl_mk.Add(static_cast<double>(strict_run->makespan));
      pw_mk.Add(static_cast<double>(pw_run->makespan));
      s2pl_w.Add(static_cast<double>(strict_run->waits));
      pw_w.Add(static_cast<double>(pw_run->waits));
      if (strict_run->throughput > 0) {
        ratio.Add(pw_run->throughput / strict_run->throughput);
      }
    }
    table.AddRow({StrCat(sites_per_global), FormatDouble(s2pl_mk.mean(), 1),
                  FormatDouble(pw_mk.mean(), 1),
                  FormatDouble(s2pl_w.mean(), 1), FormatDouble(pw_w.mean(), 1),
                  FormatDouble(ratio.mean(), 2)});
  }
  std::cout << "\n=== M2: MDBS — global 2PL vs site-local PW-2PL ===\n"
            << table.Render()
            << "(paper expectation: local serializability preserves global "
               "consistency at higher concurrency)\n\n";
}

void ReportPolicyClassTable() {
  // Each policy promises a schedule class (CSR for 2PL, PWSR for PW-2PL,
  // PWSR+DR for the DR scheduler). Verify the promise on a committed trace,
  // all classes probed through one shared AnalysisContext per run.
  TablePrinter table({"policy", "promise", "trace classes"});
  auto workload = MakeCadWorkload(/*num_txns=*/6, /*ops_per_txn=*/16,
                                  /*partitions=*/8, /*seed=*/7);
  NSE_CHECK(workload.ok());
  auto classify = [&](SchedulerPolicy& policy) {
    auto result = RunSimulation(policy, workload->scripts);
    NSE_CHECK(result.ok());
    AnalysisContext ctx(*workload->ic, result->schedule);
    return ClassifyTrace(ctx).ToString();
  };
  StrictTwoPhaseLocking strict;
  table.AddRow({"strict 2PL", "CSR + strict", classify(strict)});
  PredicatewiseTwoPhaseLocking pw(&*workload->ic);
  table.AddRow({"PW-2PL", "PWSR", classify(pw)});
  DelayedReadScheduler dr(&*workload->ic);
  table.AddRow({"PW-2PL + DR", "PWSR + DR", classify(dr)});
  std::cout << "\n=== Policy class verification (one context per trace) ===\n"
            << table.Render() << "\n";
}

void ReportDrOverheadTable() {
  // Theorem 2's mechanism priced: PW-2PL vs PW-2PL + delayed reads.
  TablePrinter table(
      {"ops/txn", "PW makespan", "PW+DR makespan", "DR overhead %"});
  for (size_t ops_per_txn : {8, 16, 32}) {
    SeriesSummary pw_mk, dr_mk;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto workload =
          MakeCadWorkload(6, ops_per_txn, 8, seed + 100);
      NSE_CHECK(workload.ok());
      PredicatewiseTwoPhaseLocking pw(&*workload->ic);
      auto pw_run = RunOnce(pw, workload->scripts);
      NSE_CHECK(pw_run.ok());
      DelayedReadScheduler dr(&*workload->ic);
      auto dr_run = RunOnce(dr, workload->scripts);
      NSE_CHECK(dr_run.ok());
      pw_mk.Add(static_cast<double>(pw_run->makespan));
      dr_mk.Add(static_cast<double>(dr_run->makespan));
    }
    double overhead =
        100.0 * (dr_mk.mean() - pw_mk.mean()) /
        (pw_mk.mean() == 0 ? 1 : pw_mk.mean());
    table.AddRow({StrCat(ops_per_txn), FormatDouble(pw_mk.mean(), 1),
                  FormatDouble(dr_mk.mean(), 1), FormatDouble(overhead, 1)});
  }
  std::cout << "\n=== Theorem 2 mechanism: delayed-read gating cost ===\n"
            << table.Render() << "\n";
}

// ---- benchmarks ----

void BM_Sim2pl(benchmark::State& state) {
  auto workload = MakeCadWorkload(6, static_cast<size_t>(state.range(0)), 8,
                                  /*seed=*/1);
  NSE_CHECK(workload.ok());
  for (auto _ : state) {
    StrictTwoPhaseLocking policy;
    auto result = RunSimulation(policy, workload->scripts);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ops/txn"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Sim2pl)->Arg(8)->Arg(32)->Arg(64);

void BM_SimPw2pl(benchmark::State& state) {
  auto workload = MakeCadWorkload(6, static_cast<size_t>(state.range(0)), 8,
                                  /*seed=*/1);
  NSE_CHECK(workload.ok());
  for (auto _ : state) {
    PredicatewiseTwoPhaseLocking policy(&*workload->ic);
    auto result = RunSimulation(policy, workload->scripts);
    benchmark::DoNotOptimize(result);
  }
  state.counters["ops/txn"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SimPw2pl)->Arg(8)->Arg(32)->Arg(64);

void BM_SimDrScheduler(benchmark::State& state) {
  auto workload = MakeCadWorkload(6, static_cast<size_t>(state.range(0)), 8,
                                  /*seed=*/1);
  NSE_CHECK(workload.ok());
  for (auto _ : state) {
    DelayedReadScheduler policy(&*workload->ic);
    auto result = RunSimulation(policy, workload->scripts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimDrScheduler)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  nse::ReportCadTable();
  nse::ReportMdbsTable();
  nse::ReportPolicyClassTable();
  nse::ReportDrOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
