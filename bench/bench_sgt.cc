// The policy zoo on contended workloads: strict/priority 2PL vs the
// optimistic schedulers. The optimistic bet is that most conflicts order
// cleanly and only genuine would-be cycles cost anything, so on hot-spot
// workloads SGT should beat strict 2PL's makespan/throughput while paying
// in restarts instead of lock waits; timestamp ordering pays the same
// currency without ever blocking; wound-wait keeps 2PL's locks but trades
// deadlock detection for priority wounds; victim-choice SGT spends the
// fewest rollback operations of the SGT family. Every CSR-promising trace
// is differentially checked against the independent CSR checker, and every
// row carries the abort/restart/wound/veto economics next to the wait
// ticks.
//
// Simulated time (makespan, throughput = completed / makespan) is fully
// deterministic per seed, so the throughput ratio SGT/2PL is a stable
// regression-guard field ("speedup"), and the outcome counters of every
// policy (completed, aborts, restarts, wounds, vetoes) are guarded
// exactly. Wall-clock columns are informational only. --smoke runs tiny
// configurations (differential asserts, no JSON); the full run writes
// BENCH_sgt.json (override the path with the last argument).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/serializability.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "scheduler/fault_injection.h"
#include "scheduler/metrics.h"
#include "scheduler/priority_locking.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/sgt_victim_policy.h"
#include "scheduler/sim.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

struct BenchCase {
  std::string name;
  PartitionedWorkloadConfig config;
  bool contended = false;  // rows where SGT is expected to beat 2PL
};

struct PolicyOutcome {
  SimResult result;
  double wall_ms = 0;
};

PolicyOutcome RunPolicy(SchedulerPolicy& policy, const Workload& workload) {
  auto start = std::chrono::steady_clock::now();
  auto result = RunSimulation(policy, workload.scripts);
  auto end = std::chrono::steady_clock::now();
  NSE_CHECK_MSG(result.ok(), "simulation failed under %s: %s",
                policy.name().c_str(), result.status().ToString().c_str());
  NSE_CHECK_MSG(result->completed == workload.scripts.size(),
                "%s completed %llu of %zu txns", policy.name().c_str(),
                static_cast<unsigned long long>(result->completed),
                workload.scripts.size());
  PolicyOutcome outcome;
  outcome.result = std::move(result).value();
  outcome.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return outcome;
}

/// A policy run under an injected fault plan: the run may legitimately
/// lose transactions to crashes or admission shedding, so the forward-
/// progress ledger (completed + crashes + shed == population) replaces the
/// everything-commits check, and the committed trace must still pass the
/// independent CSR checker.
PolicyOutcome RunPolicyFaulted(SchedulerPolicy& policy,
                               const Workload& workload,
                               const EngineConfig& sim_config) {
  auto start = std::chrono::steady_clock::now();
  auto result = RunSimulation(policy, workload.scripts, sim_config);
  auto end = std::chrono::steady_clock::now();
  NSE_CHECK_MSG(result.ok(), "faulted simulation failed under %s: %s",
                policy.name().c_str(), result.status().ToString().c_str());
  NSE_CHECK_MSG(
      result->completed + result->crashes + result->shed ==
          workload.scripts.size(),
      "%s forward-progress ledger broke: %llu completed + %llu crashed + "
      "%llu shed != %zu txns",
      policy.name().c_str(),
      static_cast<unsigned long long>(result->completed),
      static_cast<unsigned long long>(result->crashes),
      static_cast<unsigned long long>(result->shed),
      workload.scripts.size());
  NSE_CHECK_MSG(IsConflictSerializable(result->schedule),
                "%s emitted a non-CSR trace under faults",
                policy.name().c_str());
  PolicyOutcome outcome;
  outcome.result = std::move(result).value();
  outcome.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return outcome;
}

struct Row {
  std::string workload;
  size_t txns = 0;
  bool contended = false;
  PolicyOutcome strict_2pl;
  PolicyOutcome pw_2pl;
  PolicyOutcome wound_wait;
  PolicyOutcome to;
  PolicyOutcome sgt;
  PolicyOutcome sgt_victim;
  PolicyOutcome sgt_victim_pred;  // predictive victim-cost scoring
  double speedup = 0;  // SGT throughput / strict-2PL throughput
};

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  using namespace nse;
  bool smoke = false;
  std::string json_path = "BENCH_sgt.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  auto make_case = [&](std::string name, size_t txns, size_t partitions,
                       size_t per_txn, double hotspot, uint64_t seed,
                       bool contended) {
    BenchCase c;
    c.name = std::move(name);
    c.config.num_partitions = partitions;
    c.config.items_per_partition = 2;
    c.config.num_txns = smoke ? std::min<size_t>(txns, 8) : txns;
    c.config.partitions_per_txn = per_txn;
    c.config.cross_read_probability = 0.3;
    c.config.hotspot_probability = hotspot;
    c.config.seed = seed;
    c.contended = contended;
    return c;
  };

  // Sweep the contention axis. Even the "uniform" row is moderately
  // contended (32 txns x 2 partitions over 16 partitions — ~4 txns share
  // each partition), so SGT wins everywhere; the hot-spot rows crank the
  // sharing further. Only the hot rows feed the beats-2PL acceptance
  // check, since they are the regime the ISSUE names.
  // The two hotspot_100 rows are the extreme-hotspot regime the predictive
  // victim rule targets: with every access on the hot partition, the
  // sunk-cost rule's cheapest participant is usually whichever transaction
  // it knocked down last round (a fresh restart has zero sunk work).
  std::vector<BenchCase> cases = {
      make_case("uniform", 32, 16, 2, 0.0, 7, /*contended=*/false),
      make_case("hotspot_50", 32, 16, 2, 0.5, 7, /*contended=*/true),
      make_case("hotspot_90", 32, 16, 2, 0.9, 7, /*contended=*/true),
      make_case("hotspot_long_txns", 16, 12, 4, 0.8, 11, /*contended=*/true),
      make_case("hotspot_100", 32, 16, 2, 1.0, 7, /*contended=*/true),
      make_case("hotspot_100_long_txns", 16, 12, 4, 1.0, 11,
                /*contended=*/true),
  };

  TablePrinter table({"workload", "txns", "policy", "makespan", "waits",
                      "aborts", "restarts", "wounds", "vetoes",
                      "throughput"});
  std::vector<Row> rows;
  bool sgt_beat_2pl_when_contended = false;

  for (const BenchCase& c : cases) {
    auto workload = MakePartitionedWorkload(c.config);
    NSE_CHECK_MSG(workload.ok(), "workload generation failed: %s",
                  workload.status().ToString().c_str());

    Row row;
    row.workload = c.name;
    row.txns = workload->scripts.size();
    row.contended = c.contended;
    {
      StrictTwoPhaseLocking policy;
      row.strict_2pl = RunPolicy(policy, *workload);
    }
    {
      PredicatewiseTwoPhaseLocking policy(&*workload->ic);
      row.pw_2pl = RunPolicy(policy, *workload);
    }
    {
      WoundWaitPolicy policy(workload->scripts.size());
      row.wound_wait = RunPolicy(policy, *workload);
      // Deadlock-free by construction: priority waits cannot cycle, so
      // the victim machinery must never have fired.
      NSE_CHECK_MSG(row.wound_wait.result.aborts == 0,
                    "wound-wait hit a deadlock on %s", c.name.c_str());
      NSE_CHECK_MSG(IsConflictSerializable(row.wound_wait.result.schedule),
                    "wound-wait emitted a non-CSR trace on %s",
                    c.name.c_str());
    }
    {
      TimestampOrderingPolicy policy(workload->scripts.size());
      row.to = RunPolicy(policy, *workload);
      // TO never blocks: its entire cost is rejections-turned-restarts.
      NSE_CHECK_MSG(row.to.result.total_wait_ticks == 0,
                    "TO waited on %s", c.name.c_str());
      NSE_CHECK_MSG(row.to.result.aborts == 0, "TO deadlocked on %s",
                    c.name.c_str());
      NSE_CHECK_MSG(IsConflictSerializable(row.to.result.schedule),
                    "TO emitted a non-CSR trace on %s", c.name.c_str());
    }
    {
      SgtPolicy policy(workload->scripts.size());
      row.sgt = RunPolicy(policy, *workload);
      // Differential contract: the committed SGT trace must pass the
      // independent CSR checker, and the policy's live graph must be the
      // committed trace's conflict graph (no residual edges).
      NSE_CHECK_MSG(IsConflictSerializable(row.sgt.result.schedule),
                    "SGT emitted a non-CSR trace on %s", c.name.c_str());
      NSE_CHECK_MSG(
          policy.graph().Edges() ==
              ConflictGraph::Build(row.sgt.result.schedule).Edges(),
          "SGT left residual graph edges on %s", c.name.c_str());
    }
    {
      SgtVictimPolicy policy(workload->scripts.size());
      row.sgt_victim = RunPolicy(policy, *workload);
      NSE_CHECK_MSG(IsConflictSerializable(row.sgt_victim.result.schedule),
                    "SGT-victim emitted a non-CSR trace on %s",
                    c.name.c_str());
      NSE_CHECK_MSG(
          policy.graph().Edges() ==
              ConflictGraph::Build(row.sgt_victim.result.schedule).Edges(),
          "SGT-victim left residual graph edges on %s", c.name.c_str());
    }
    {
      SgtPolicy::Options options;
      options.victim_cost = SgtPolicy::Options::VictimCost::kPredictive;
      SgtVictimPolicy policy(workload->scripts.size(), options);
      row.sgt_victim_pred = RunPolicy(policy, *workload);
      NSE_CHECK_MSG(
          IsConflictSerializable(row.sgt_victim_pred.result.schedule),
          "predictive SGT-victim emitted a non-CSR trace on %s",
          c.name.c_str());
      NSE_CHECK_MSG(
          policy.graph().Edges() ==
              ConflictGraph::Build(row.sgt_victim_pred.result.schedule)
                  .Edges(),
          "predictive SGT-victim left residual graph edges on %s",
          c.name.c_str());
    }
    row.speedup = row.strict_2pl.result.throughput == 0
                      ? 0
                      : row.sgt.result.throughput /
                            row.strict_2pl.result.throughput;
    if (c.contended && row.speedup > 1.0) sgt_beat_2pl_when_contended = true;
    rows.push_back(row);

    auto add = [&](const char* policy, const PolicyOutcome& o) {
      table.AddRow({row.workload, StrCat(row.txns), policy,
                    StrCat(o.result.makespan),
                    StrCat(o.result.total_wait_ticks),
                    StrCat(o.result.aborts), StrCat(o.result.restarts),
                    StrCat(o.result.wounds), StrCat(o.result.vetoes),
                    FormatDouble(o.result.throughput, 3)});
    };
    add("strict-2pl", row.strict_2pl);
    add("pw-2pl", row.pw_2pl);
    add("wound-wait", row.wound_wait);
    add("to", row.to);
    add("sgt", row.sgt);
    add("sgt-victim", row.sgt_victim);
    add("sgt-victim-pred", row.sgt_victim_pred);
  }

  std::cout << "\n=== Policy zoo (lock-based, priority, optimistic) on the "
               "contention sweep ===\n"
            << table.Render()
            << "(makespan/throughput are simulated ticks — deterministic "
               "per seed; the optimistic rows pay restarts/wounds+vetoes "
               "instead of lock waits)\n";

  NSE_CHECK_MSG(sgt_beat_2pl_when_contended,
                "SGT did not beat strict 2PL throughput on any contended "
                "workload — the optimistic bet regressed");

  // Victim-choice economics, reported for the record: the cross-run
  // rollback comparison is an aggregate property of the *randomized*
  // differential-harness distribution (where PolicyInvariantFuzz pins it
  // with prefix dominance); on these four curated hot-spot rows it can go
  // either way per row, so here the per-row counters are exact-guarded in
  // the JSON instead of inequality-asserted.
  uint64_t victim_rollbacks = 0, sgt_rollbacks = 0, pred_rollbacks = 0;
  for (const Row& row : rows) {
    victim_rollbacks += row.sgt_victim.result.restarts +
                        row.sgt_victim.result.wounds +
                        row.sgt_victim.result.aborts;
    pred_rollbacks += row.sgt_victim_pred.result.restarts +
                      row.sgt_victim_pred.result.wounds +
                      row.sgt_victim_pred.result.aborts;
    sgt_rollbacks += row.sgt.result.restarts + row.sgt.result.aborts;
  }
  std::cout << "sgt-victim rollbacks " << victim_rollbacks
            << " (predictive " << pred_rollbacks << ") vs baseline sgt "
            << sgt_rollbacks << " across the sweep\n";

  // === Fault-injection rows: the same engine under injected adversity ===
  // An abort-rate x backoff sweep plus a crash/latency row and an
  // admission-gate row, on the hotspot_90 workload under the pessimistic
  // (strict 2PL), non-blocking (TO) and optimistic (SGT) corners of the
  // zoo. Every counter is a pure function of the seeds, so the JSON guards
  // them exactly: a drift means the fault / backoff / admission machinery
  // changed behavior, not that the hardware was slow.
  struct FaultBench {
    std::string name;
    FaultPlanConfig faults;
    RestartPolicy restart;
  };
  auto abort_plan = [](uint64_t seed, double p) {
    FaultPlanConfig fc;
    fc.seed = seed;
    fc.client_abort_probability = p;
    return fc;
  };
  RestartPolicy expo;
  expo.backoff = RestartPolicy::Backoff::kExponential;
  expo.base = 2;
  expo.cap = 64;
  expo.jitter = 3;
  expo.jitter_seed = 29;
  std::vector<FaultBench> fault_cases = {
      {"faults_abort30_linear", abort_plan(101, 0.3), RestartPolicy{}},
      {"faults_abort70_linear", abort_plan(102, 0.7), RestartPolicy{}},
      {"faults_abort30_expo", abort_plan(103, 0.3), expo},
      {"faults_abort70_expo", abort_plan(104, 0.7), expo},
  };
  {
    FaultPlanConfig fc;
    fc.seed = 105;
    fc.crash_probability = 0.25;
    fc.latency_spike_probability = 0.3;
    fc.max_latency_spike_ticks = 6;
    fc.max_arrival_delay = 4;
    fault_cases.push_back({"faults_crash_latency", fc, RestartPolicy{}});
  }
  {
    RestartPolicy gate = expo;
    gate.max_restarts_before_boost = 8;
    gate.max_live_txns = 4;
    gate.overflow = RestartPolicy::Overflow::kQueue;
    fault_cases.push_back({"faults_admission_q4", abort_plan(106, 0.4), gate});
  }

  struct FaultRow {
    std::string name;
    size_t txns = 0;
    PolicyOutcome strict_2pl;
    PolicyOutcome to;
    PolicyOutcome sgt;
  };
  std::vector<FaultRow> fault_rows;
  TablePrinter fault_table({"workload", "policy", "completed", "crashes",
                            "fault_aborts", "boosts", "shed",
                            "backoff_ticks", "max_restarts", "makespan"});
  BenchCase fault_case =
      make_case("hotspot_90", 32, 16, 2, 0.9, 7, /*contended=*/true);
  auto fault_workload = MakePartitionedWorkload(fault_case.config);
  NSE_CHECK_MSG(fault_workload.ok(), "fault workload generation failed: %s",
                fault_workload.status().ToString().c_str());
  for (const FaultBench& fb : fault_cases) {
    FaultPlan plan(fb.faults);
    EngineConfig sim_config;
    sim_config.faults = &plan;
    sim_config.restart = fb.restart;

    FaultRow frow;
    frow.name = fb.name;
    frow.txns = fault_workload->scripts.size();
    {
      StrictTwoPhaseLocking policy;
      frow.strict_2pl = RunPolicyFaulted(policy, *fault_workload, sim_config);
      NSE_CHECK_MSG(policy.held_locks() == 0,
                    "strict 2PL left residual locks on %s", fb.name.c_str());
    }
    {
      TimestampOrderingPolicy policy(fault_workload->scripts.size());
      frow.to = RunPolicyFaulted(policy, *fault_workload, sim_config);
      NSE_CHECK_MSG(policy.active_stamp_entries() == 0,
                    "TO left residual stamp entries on %s", fb.name.c_str());
    }
    {
      SgtPolicy policy(fault_workload->scripts.size());
      frow.sgt = RunPolicyFaulted(policy, *fault_workload, sim_config);
      NSE_CHECK_MSG(policy.graph().Edges() ==
                        ConflictGraph::Build(frow.sgt.result.schedule).Edges(),
                    "SGT left residual graph edges on %s", fb.name.c_str());
    }
    auto add_fault = [&](const char* policy, const PolicyOutcome& o) {
      fault_table.AddRow(
          {frow.name, policy, StrCat(o.result.completed),
           StrCat(o.result.crashes), StrCat(o.result.fault_aborts),
           StrCat(o.result.boosts), StrCat(o.result.shed),
           StrCat(o.result.backoff_ticks), StrCat(o.result.max_txn_restarts),
           StrCat(o.result.makespan)});
    };
    add_fault("strict-2pl", frow.strict_2pl);
    add_fault("to", frow.to);
    add_fault("sgt", frow.sgt);
    fault_rows.push_back(frow);
  }
  std::cout << "\n=== Fault injection (client aborts / crashes / latency / "
               "admission) on hotspot_90 ===\n"
            << fault_table.Render()
            << "(every counter is deterministic per seed; crashed and shed "
               "transactions never commit, everything else must)\n";

  if (smoke) {
    std::cout << "smoke mode: CSR differential + residual-edge + "
                 "no-deadlock + no-wait checks passed, no baseline "
                 "written\n";
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"sgt\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        json,
        "    {\"workload\": \"%s\", \"txns\": %zu, "
        "\"speedup\": %.3f, "
        "\"completed\": %llu, \"aborts\": %llu, \"restarts\": %llu, "
        "\"vetoes\": %llu, "
        "\"restarts_to\": %llu, \"aborts_ww\": %llu, \"wounds_ww\": %llu, "
        "\"restarts_victim\": %llu, \"wounds_victim\": %llu, "
        "\"aborts_victim\": %llu, "
        "\"restarts_victim_pred\": %llu, \"wounds_victim_pred\": %llu, "
        "\"aborts_victim_pred\": %llu, "
        "\"makespan_2pl\": %llu, \"makespan_pw2pl\": %llu, "
        "\"makespan_sgt\": %llu, "
        "\"makespan_ww\": %llu, \"makespan_to\": %llu, "
        "\"makespan_victim\": %llu, \"makespan_victim_pred\": %llu, "
        "\"wait_ticks_2pl\": %llu, \"wait_ticks_sgt\": %llu, "
        "\"throughput_2pl\": %.4f, \"throughput_pw2pl\": %.4f, "
        "\"throughput_sgt\": %.4f, "
        "\"throughput_ww\": %.4f, \"throughput_to\": %.4f, "
        "\"throughput_victim\": %.4f, \"throughput_victim_pred\": %.4f, "
        "\"wall_ms\": %.3f}%s\n",
        row.workload.c_str(), row.txns, row.speedup,
        static_cast<unsigned long long>(row.sgt.result.completed),
        static_cast<unsigned long long>(row.sgt.result.aborts),
        static_cast<unsigned long long>(row.sgt.result.restarts),
        static_cast<unsigned long long>(row.sgt.result.vetoes),
        static_cast<unsigned long long>(row.to.result.restarts),
        static_cast<unsigned long long>(row.wound_wait.result.aborts),
        static_cast<unsigned long long>(row.wound_wait.result.wounds),
        static_cast<unsigned long long>(row.sgt_victim.result.restarts),
        static_cast<unsigned long long>(row.sgt_victim.result.wounds),
        static_cast<unsigned long long>(row.sgt_victim.result.aborts),
        static_cast<unsigned long long>(row.sgt_victim_pred.result.restarts),
        static_cast<unsigned long long>(row.sgt_victim_pred.result.wounds),
        static_cast<unsigned long long>(row.sgt_victim_pred.result.aborts),
        static_cast<unsigned long long>(row.strict_2pl.result.makespan),
        static_cast<unsigned long long>(row.pw_2pl.result.makespan),
        static_cast<unsigned long long>(row.sgt.result.makespan),
        static_cast<unsigned long long>(row.wound_wait.result.makespan),
        static_cast<unsigned long long>(row.to.result.makespan),
        static_cast<unsigned long long>(row.sgt_victim.result.makespan),
        static_cast<unsigned long long>(row.sgt_victim_pred.result.makespan),
        static_cast<unsigned long long>(row.strict_2pl.result.total_wait_ticks),
        static_cast<unsigned long long>(row.sgt.result.total_wait_ticks),
        row.strict_2pl.result.throughput, row.pw_2pl.result.throughput,
        row.sgt.result.throughput, row.wound_wait.result.throughput,
        row.to.result.throughput, row.sgt_victim.result.throughput,
        row.sgt_victim_pred.result.throughput,
        row.sgt.wall_ms,
        i + 1 < rows.size() || !fault_rows.empty() ? "," : "");
  }
  for (size_t i = 0; i < fault_rows.size(); ++i) {
    const FaultRow& frow = fault_rows[i];
    const SimResult& r2pl = frow.strict_2pl.result;
    const SimResult& rto = frow.to.result;
    const SimResult& rsgt = frow.sgt.result;
    std::fprintf(
        json,
        "    {\"workload\": \"%s\", \"txns\": %zu, "
        "\"completed_2pl\": %llu, \"crashes_2pl\": %llu, "
        "\"fault_aborts_2pl\": %llu, \"boosts_2pl\": %llu, "
        "\"shed_2pl\": %llu, \"backoff_ticks_2pl\": %llu, "
        "\"max_restarts_2pl\": %llu, \"makespan_2pl\": %llu, "
        "\"completed_to\": %llu, \"crashes_to\": %llu, "
        "\"fault_aborts_to\": %llu, \"boosts_to\": %llu, "
        "\"shed_to\": %llu, \"backoff_ticks_to\": %llu, "
        "\"max_restarts_to\": %llu, \"makespan_to\": %llu, "
        "\"completed_sgt\": %llu, \"crashes_sgt\": %llu, "
        "\"fault_aborts_sgt\": %llu, \"boosts_sgt\": %llu, "
        "\"shed_sgt\": %llu, \"backoff_ticks_sgt\": %llu, "
        "\"max_restarts_sgt\": %llu, \"makespan_sgt\": %llu, "
        "\"wall_ms\": %.3f}%s\n",
        frow.name.c_str(), frow.txns,
        static_cast<unsigned long long>(r2pl.completed),
        static_cast<unsigned long long>(r2pl.crashes),
        static_cast<unsigned long long>(r2pl.fault_aborts),
        static_cast<unsigned long long>(r2pl.boosts),
        static_cast<unsigned long long>(r2pl.shed),
        static_cast<unsigned long long>(r2pl.backoff_ticks),
        static_cast<unsigned long long>(r2pl.max_txn_restarts),
        static_cast<unsigned long long>(r2pl.makespan),
        static_cast<unsigned long long>(rto.completed),
        static_cast<unsigned long long>(rto.crashes),
        static_cast<unsigned long long>(rto.fault_aborts),
        static_cast<unsigned long long>(rto.boosts),
        static_cast<unsigned long long>(rto.shed),
        static_cast<unsigned long long>(rto.backoff_ticks),
        static_cast<unsigned long long>(rto.max_txn_restarts),
        static_cast<unsigned long long>(rto.makespan),
        static_cast<unsigned long long>(rsgt.completed),
        static_cast<unsigned long long>(rsgt.crashes),
        static_cast<unsigned long long>(rsgt.fault_aborts),
        static_cast<unsigned long long>(rsgt.boosts),
        static_cast<unsigned long long>(rsgt.shed),
        static_cast<unsigned long long>(rsgt.backoff_ticks),
        static_cast<unsigned long long>(rsgt.max_txn_restarts),
        static_cast<unsigned long long>(rsgt.makespan),
        frow.sgt.wall_ms, i + 1 < fault_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "baseline written to " << json_path << "\n";
  return 0;
}
