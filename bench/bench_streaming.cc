// The streaming checker's throughput/memory contract, measured: a
// million-op history is streamed through the windowed checker without ever
// being materialized, and the JSON rows pin (exactly — the stream is a
// pure function of the seed) how many transactions the window actually
// retains. The lane-structured stream is acyclic by construction — each
// lane runs its transactions serially over its own item block, and the
// only cross-lane conflicts are reads of a hot read-only set written once
// up front — so no plane ever latches a violation and every event pays
// full bookkeeping: the numbers are the checker's steady state, not the
// post-latch fast path. peak_retained must stay near window + lanes while
// the log holds hundreds of thousands of transactions; that inequality is
// NSE_CHECKed here and the exact counters are guarded by
// tools/check_bench_regression.py against BENCH_streaming.json.
//
// The speedup row materializes a smaller lane log and times the streaming
// pass against the batch plane (CommittedProjection → AnalysisContext) on
// the same history, asserting verdict agreement first — the differential
// contract from the test suite, re-checked at bench scale.
//
// --smoke runs tiny streams with all the asserts and no JSON; the full
// run writes BENCH_streaming.json (override the path with the last
// argument).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/streaming_checker.h"
#include "common/logging.h"
#include "common/rng.h"
#include "history/batch_check.h"
#include "history/history.h"
#include "state/database.h"

namespace nse {
namespace {

struct LaneConfig {
  uint32_t lanes = 8;            ///< concurrent serial lanes
  /// Private block per lane. Sized so same-lane conflicts are sparse: the
  /// conflict-graph edge count of the WHOLE log grows ~quadratically in
  /// transactions over a fixed catalog (every item reuse is a conflict),
  /// so a tiny block would make any whole-log analysis — batch, or
  /// streaming with an unbounded window — inherently quadratic. The
  /// windowed checker only ever sees the retained neighborhood either
  /// way; the block size governs the batch side of the speedup row.
  uint32_t items_per_lane = 64;
  uint32_t hot_items = 4;        ///< read-only shared set
  uint32_t min_ops = 2;          ///< ops per transaction, uniform
  uint32_t max_ops = 6;
  double hot_read_fraction = 0.2;
  double write_fraction = 0.5;
  uint64_t target_ops = 1'000'000;
  uint64_t seed = 42;
};

Database LaneCatalog(const LaneConfig& config) {
  Database db;
  std::vector<std::string> names;
  for (uint32_t lane = 0; lane < config.lanes; ++lane) {
    for (uint32_t i = 0; i < config.items_per_lane; ++i) {
      names.push_back("l" + std::to_string(lane) + "_" + std::to_string(i));
    }
  }
  for (uint32_t h = 0; h < config.hot_items; ++h) {
    names.push_back("hot" + std::to_string(h));
  }
  NSE_CHECK(db.AddIntItems(names, 0, 1 << 20).ok());
  return db;
}

/// Deterministic lane-structured stream: lane transactions are serial
/// within a lane (conflict edges only flow forward along each lane) and
/// the hot set is written exactly once by the setup transaction before
/// any reader begins, so the full conflict graph is acyclic no matter how
/// the lanes interleave. `sink` receives every event; an optional
/// collector materializes the log for batch comparison.
template <typename Sink>
uint64_t EmitLaneStream(const LaneConfig& config, const Database& db,
                        Sink&& sink) {
  struct Lane {
    TxnId txn = 0;
    uint32_t ops_left = 0;
  };
  Rng rng(config.seed);
  const ItemId hot_base = config.lanes * config.items_per_lane;
  TxnId next_txn = 1;
  int64_t next_value = 1;
  uint64_t ops = 0;

  // Setup transaction: writes the hot set, commits before anyone reads.
  const TxnId setup = next_txn++;
  sink(HistoryEvent::Begin(setup));
  for (uint32_t h = 0; h < config.hot_items; ++h) {
    sink(HistoryEvent::Write(setup, hot_base + h, Value(next_value++)));
    ++ops;
  }
  sink(HistoryEvent::Commit(setup));

  std::vector<Lane> lanes(config.lanes);
  while (ops < config.target_ops) {
    Lane& lane = lanes[rng.NextBelow(config.lanes)];
    const uint32_t lane_index = static_cast<uint32_t>(&lane - lanes.data());
    if (lane.txn == 0) {
      lane.txn = next_txn++;
      lane.ops_left = static_cast<uint32_t>(
          rng.NextInt(config.min_ops, config.max_ops));
      sink(HistoryEvent::Begin(lane.txn));
      continue;
    }
    if (lane.ops_left == 0) {
      sink(HistoryEvent::Commit(lane.txn));
      lane.txn = 0;
      continue;
    }
    --lane.ops_left;
    ++ops;
    if (rng.NextBool(config.hot_read_fraction)) {
      const ItemId item = hot_base +
                          static_cast<ItemId>(rng.NextBelow(config.hot_items));
      sink(HistoryEvent::Read(lane.txn, item, Value(0), setup));
      continue;
    }
    const ItemId item =
        lane_index * config.items_per_lane +
        static_cast<ItemId>(rng.NextBelow(config.items_per_lane));
    if (rng.NextBool(config.write_fraction)) {
      sink(HistoryEvent::Write(lane.txn, item, Value(next_value++)));
    } else {
      sink(HistoryEvent::Read(lane.txn, item, Value(0)));
    }
  }
  for (Lane& lane : lanes) {
    if (lane.txn != 0) sink(HistoryEvent::Commit(lane.txn));
  }
  return ops;
}

struct StreamRow {
  std::string name;
  size_t window = 0;
  size_t planes = 0;
  StreamingStats stats;
  uint64_t violations = 0;
  size_t aborted_reads = 0;
  double wall_ms = 0;
  double ops_per_s = 0;
  double speedup_vs_batch = 0;  ///< only on the speedup row
  double batch_ms = 0;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Streams the lane log straight into the checker — nothing materialized.
StreamRow RunStreamRow(const std::string& name, const LaneConfig& config,
                       size_t window, size_t plane_count) {
  Database db = LaneCatalog(config);
  StreamingOptions options;
  options.window = window;
  if (plane_count > 1) {
    // Split the catalog into contiguous ranges.
    const ItemId per = static_cast<ItemId>(db.num_items() / plane_count);
    for (size_t p = 0; p < plane_count; ++p) {
      DataSet plane;
      const ItemId lo = static_cast<ItemId>(p * per);
      const ItemId hi = (p + 1 == plane_count)
                            ? static_cast<ItemId>(db.num_items())
                            : static_cast<ItemId>(lo + per);
      for (ItemId item = lo; item < hi; ++item) plane.Insert(item);
      options.planes.push_back(plane);
    }
  }
  StreamingChecker checker(db, options);
  const auto start = std::chrono::steady_clock::now();
  EmitLaneStream(config, db, [&](const HistoryEvent& event) {
    Status fed = checker.Feed(event);
    NSE_CHECK_MSG(fed.ok(), "%s", fed.ToString().c_str());
  });
  NSE_CHECK(!checker.violation_seen());  // acyclic by construction
  StreamingReport report = checker.Finish();
  const double wall_ms = MsSince(start);
  NSE_CHECK(report.ok());
  // The memory contract: retention tracks the window plus the concurrent
  // lanes, not the log.
  NSE_CHECK_MSG(report.stats.peak_retained < window + config.lanes + 16,
                "peak_retained %zu exceeds window bound",
                report.stats.peak_retained);

  StreamRow row;
  row.name = name;
  row.window = window;
  row.planes = options.planes.size();
  row.stats = report.stats;
  row.violations = report.full.ok ? 0 : 1;
  row.aborted_reads = report.aborted_reads.size();
  row.wall_ms = wall_ms;
  row.ops_per_s = report.stats.ops / (wall_ms / 1e3);
  return row;
}

/// Materializes a smaller lane log and times streaming vs the batch plane
/// on the identical history, asserting the differential contract first.
StreamRow RunSpeedupRow(const LaneConfig& config, size_t window) {
  History h;
  h.db = LaneCatalog(config);
  EmitLaneStream(config, h.db,
                 [&](const HistoryEvent& event) { h.events.push_back(event); });

  auto start = std::chrono::steady_clock::now();
  StreamingOptions options;
  options.window = window;
  StreamingReport streaming = CheckHistoryStreaming(h, options);
  const double streaming_ms = MsSince(start);

  start = std::chrono::steady_clock::now();
  BatchReport batch = CheckHistoryBatch(h);
  const double batch_ms = MsSince(start);

  NSE_CHECK(streaming.full.ok == batch.full.ok);
  NSE_CHECK(streaming.aborted_reads == batch.aborted_reads);
  NSE_CHECK(streaming.ok() && batch.ok());

  StreamRow row;
  row.name = "speedup_vs_batch";
  row.window = window;
  row.stats = streaming.stats;
  row.violations = streaming.full.ok ? 0 : 1;
  row.aborted_reads = streaming.aborted_reads.size();
  row.wall_ms = streaming_ms;
  row.ops_per_s = streaming.stats.ops / (streaming_ms / 1e3);
  row.speedup_vs_batch = batch_ms / streaming_ms;
  row.batch_ms = batch_ms;
  return row;
}

void PrintRow(const StreamRow& row) {
  std::printf(
      "%-22s window %-5zu planes %zu | %9llu events %9llu ops "
      "%8.0f ops/s | retained peak %5zu evictions %8llu rebuilds %llu",
      row.name.c_str(), row.window, row.planes,
      static_cast<unsigned long long>(row.stats.events),
      static_cast<unsigned long long>(row.stats.ops), row.ops_per_s,
      row.stats.peak_retained,
      static_cast<unsigned long long>(row.stats.evictions),
      static_cast<unsigned long long>(row.stats.rebuilds));
  if (row.speedup_vs_batch > 0) {
    std::printf(" | %.2fx vs batch (%.1f ms vs %.1f ms)", row.speedup_vs_batch,
                row.wall_ms, row.batch_ms);
  }
  std::printf("\n");
}

int Run(bool smoke, uint64_t ops_override, const std::string& json_path) {
  LaneConfig stream_config;
  LaneConfig speedup_config;
  speedup_config.target_ops = 50'000;
  speedup_config.seed = 7;
  speedup_config.items_per_lane = 512;  // keep the batch edge count sane
  if (smoke) {
    stream_config.target_ops = 4'000;
    speedup_config.target_ops = 4'000;
  }
  if (ops_override != 0) {
    stream_config.target_ops = ops_override;
    speedup_config.target_ops = std::min<uint64_t>(ops_override, 50'000);
  }

  std::vector<StreamRow> rows;
  rows.push_back(RunStreamRow("lane_stream", stream_config, 64, 0));
  rows.push_back(RunStreamRow("lane_stream", stream_config, 512, 0));
  rows.push_back(RunStreamRow("lane_stream_planes", stream_config, 64, 2));
  rows.push_back(RunSpeedupRow(speedup_config, 64));
  for (const StreamRow& row : rows) PrintRow(row);

  if (smoke) {
    std::printf("smoke ok\n");
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"streaming\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const StreamRow& row = rows[i];
    std::fprintf(
        json,
        "    {\"case\": \"%s\", \"window\": %zu, \"planes\": %zu, "
        "\"events\": %llu, \"ops\": %llu, \"commits\": %llu, "
        "\"evictions\": %llu, \"rebuilds\": %llu, \"peak_retained\": %zu, "
        "\"violations\": %llu, \"aborted_reads\": %zu, ",
        row.name.c_str(), row.window, row.planes,
        static_cast<unsigned long long>(row.stats.events),
        static_cast<unsigned long long>(row.stats.ops),
        static_cast<unsigned long long>(row.stats.commits),
        static_cast<unsigned long long>(row.stats.evictions),
        static_cast<unsigned long long>(row.stats.rebuilds),
        row.stats.peak_retained,
        static_cast<unsigned long long>(row.violations), row.aborted_reads);
    if (row.speedup_vs_batch > 0) {
      std::fprintf(json, "\"speedup_vs_batch\": %.3f, \"batch_ms\": %.3f, ",
                   row.speedup_vs_batch, row.batch_ms);
    }
    std::fprintf(json, "\"ops_per_s\": %.0f, \"wall_ms\": %.3f}%s\n",
                 row.ops_per_s, row.wall_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "baseline written to " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) {
  bool smoke = false;
  uint64_t ops_override = 0;
  std::string json_path = "BENCH_streaming.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops_override = std::strtoull(argv[++i], nullptr, 10);
    } else {
      json_path = argv[i];
    }
  }
  return nse::Run(smoke, ops_override, json_path);
}
