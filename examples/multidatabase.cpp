// Multidatabase (MDBS) scenario from §4 / [4]: autonomous sites each
// guarantee only *local* serializability. When every integrity constraint
// is local to one site, the sites are exactly the conjunct data sets and
// the global schedule is PWSR — so the paper's theorems give global
// consistency without global concurrency control.
//
//   $ ./examples/multidatabase

#include <iostream>

#include "nse/nse.h"
#include "scheduler/metrics.h"

using namespace nse;

int main() {
  std::cout << "MDBS: 4 autonomous sites, 2 global + 6 local transactions\n\n";
  auto workload = MakeMdbsWorkload(/*num_sites=*/4, /*global_txns=*/2,
                                   /*local_txns=*/6, /*sites_per_global=*/3,
                                   /*seed=*/13);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }
  std::cout << "Per-site integrity constraints:\n  "
            << workload->ic->ToString(workload->db) << "\n\n";

  // Site-local scheduling: each site runs its own 2PL scope — exactly what
  // PW-2PL models when conjuncts are sites.
  PredicatewiseTwoPhaseLocking local_policy(&*workload->ic);
  auto local_run = RunSimulation(local_policy, workload->scripts);
  if (!local_run.ok()) {
    std::cerr << local_run.status() << "\n";
    return 1;
  }

  // Global serializability for comparison: one strict-2PL scope spanning
  // all sites (what autonomy makes impossible in practice).
  StrictTwoPhaseLocking global_policy;
  auto global_run = RunSimulation(global_policy, workload->scripts);
  if (!global_run.ok()) {
    std::cerr << global_run.status() << "\n";
    return 1;
  }

  TablePrinter table({"scheme", "makespan", "waits", "global schedule"});
  table.AddRow({"global strict 2PL", StrCat(global_run->makespan),
                StrCat(global_run->total_wait_ticks),
                IsConflictSerializable(global_run->schedule)
                    ? "serializable"
                    : "not serializable"});
  PwsrReport pwsr = CheckPwsr(local_run->schedule, *workload->ic);
  table.AddRow({"site-local 2PL", StrCat(local_run->makespan),
                StrCat(local_run->total_wait_ticks),
                StrCat(pwsr.is_pwsr ? "PWSR (locally serializable)"
                                    : "NOT PWSR",
                       IsConflictSerializable(local_run->schedule)
                           ? ", also CSR"
                           : ", not CSR")});
  std::cout << table.Render() << "\n";

  std::cout << "Per-site serialization orders under site-local control:\n";
  for (size_t e = 0; e < workload->ic->num_conjuncts(); ++e) {
    std::cout << "  site " << e + 1 << " "
              << workload->db.DataSetToString(workload->ic->data_set(e))
              << ": ";
    const auto& order = pwsr.OrderFor(e);
    if (order.has_value()) {
      for (TxnId txn : *order) std::cout << "T" << txn << " ";
      std::cout << "\n";
    } else {
      std::cout << "not serializable\n";
    }
  }
  std::cout << "\nEach site orders the global transactions differently —\n"
               "the global schedule need not be serializable, yet §4 of the\n"
               "paper (with Theorems 1-3) shows consistency is preserved\n"
               "because every constraint is local to one site.\n";
  return 0;
}
