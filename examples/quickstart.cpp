// Quickstart: model a tiny database with a partitioned integrity
// constraint, run two transaction programs concurrently, and ask the nse
// checkers everything the paper can tell you about the resulting schedule.
//
//   $ ./examples/quickstart

#include <iostream>

#include "nse/nse.h"

using namespace nse;

int main() {
  // 1. The database: four items with small integer domains.
  Database db;
  if (!db.AddIntItems({"checking", "savings", "audit_log", "counter"},
                      -100, 100)
           .ok()) {
    return 1;
  }

  // 2. The integrity constraint, one conjunct per concern:
  //    C1 — the two account balances always sum to at least zero;
  //    C2 — the audit log position never runs backwards past the counter.
  auto ic = IntegrityConstraint::Parse(
      db, "checking + savings >= 0 & audit_log >= counter");
  if (!ic.ok()) {
    std::cerr << ic.status() << "\n";
    return 1;
  }
  std::cout << "IC: " << ic->ToString(db) << "\n\n";

  // 3. Two transaction programs. Transfer moves 10 between the accounts
  //    (preserving C1); Audit advances both log items (preserving C2).
  TransactionProgram transfer(
      "Transfer", {MustAssign(db, "checking", "checking - 10"),
                   MustAssign(db, "savings", "savings + 10")});
  TransactionProgram audit(
      "Audit", {MustAssign(db, "counter", "counter + 1"),
                MustAssign(db, "audit_log", "counter + 1")});
  std::cout << transfer.ToString(db) << "\n" << audit.ToString(db) << "\n";

  // 4. Execute them concurrently from a consistent initial state. The
  //    choice sequence says which program performs its next operation.
  DbState initial = DbState::OfNamed(db, {{"checking", Value(50)},
                                          {"savings", Value(50)},
                                          {"audit_log", Value(3)},
                                          {"counter", Value(3)}});
  std::vector<const TransactionProgram*> programs{&transfer, &audit};
  auto run = Interleave(db, programs, initial, {0, 1, 0, 1, 0, 1, 0});
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  std::cout << "\nSchedule S: " << run->schedule.ToString(db) << "\n";
  std::cout << "Final state: " << run->final_state.ToString(db) << "\n\n";

  // 5. One AnalysisContext per execution: every checker in the registry
  //    reuses the same memoized conflict graphs, projections, and solver.
  AnalysisOptions options;
  options.programs = &programs;
  AnalysisContext ctx(db, *ic, run->schedule, options);
  for (const CheckResult& result : CheckerRegistry::BuiltIn().RunAll(ctx)) {
    std::cout << result.ToString() << "\n";
  }

  // 6. The full theorem certificate, from the same context.
  TheoremCertificate cert = Certify(ctx);
  std::cout << "\n" << cert.Summary() << "\n\n";

  // 7. And check strong correctness (Definition 1) of this concrete run.
  auto report = CheckExecution(ctx.consistency_checker(), run->schedule,
                               initial);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  std::cout << "Strongly correct execution: "
            << (report->strongly_correct ? "yes" : "no") << "\n";
  for (const auto& violation : report->violations) {
    std::cout << "  violation: " << violation.ToString(db) << "\n";
  }
  return 0;
}
