// A narrated tour of the paper's five worked examples, each executed
// through the library and compared against the printed values.
//
//   $ ./examples/paper_walkthrough

#include <iostream>

#include "nse/nse.h"
#include "paper/paper_examples.h"

using namespace nse;

namespace {

void Banner(const char* title) {
  std::cout << "\n============================================\n"
            << title << "\n============================================\n";
}

void Example1() {
  Banner("Example 1 (§2.2): transactions and notation");
  auto ex = paper::Example1::Make();
  std::cout << ex.tp1.ToString(ex.db) << ex.tp2.ToString(ex.db)
            << "DS1 = " << ex.ds1.ToString(ex.db) << "\n";
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = *Interleave(ex.db, programs, ex.ds1, ex.choices);
  std::cout << "S   = " << run.schedule.ToString(ex.db) << "\n"
            << "DS2 = " << run.final_state.ToString(ex.db) << "\n";
  Transaction t1 = run.schedule.TransactionOf(1);
  std::cout << "RS(T1) = " << ex.db.DataSetToString(t1.ReadSet())
            << "   read(T1) = " << t1.ReadMap().ToString(ex.db) << "\n"
            << "WS(T1) = " << ex.db.DataSetToString(t1.WriteSet())
            << "   write(T1) = " << t1.WriteMap().ToString(ex.db) << "\n"
            << "S^{a,c} = "
            << run.schedule.Project(ex.db.SetOf({"a", "c"})).ToString(ex.db)
            << "\n";
}

void Example2() {
  Banner("Example 2 (§3): PWSR alone does not preserve consistency");
  auto ex = paper::Example2::Make();
  std::cout << "IC: " << ex.ic->ToString(ex.db) << "\n"
            << ex.tp1.ToString(ex.db) << ex.tp2.ToString(ex.db);
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = *Interleave(ex.db, programs, ex.ds0, ex.choices);
  std::cout << "S = " << run.schedule.ToString(ex.db) << "\n";
  PwsrReport pwsr = CheckPwsr(run.schedule, *ex.ic);
  std::cout << PwsrReportToString(ex.db, *ex.ic, pwsr) << "\n";
  std::cout << "serializable as a whole: "
            << (IsConflictSerializable(run.schedule) ? "yes" : "no") << "\n";
  ConsistencyChecker checker(ex.db, *ex.ic);
  std::cout << "final state " << run.final_state.ToString(ex.db)
            << " consistent: "
            << (*checker.IsConsistent(run.final_state) ? "yes" : "NO")
            << "\n";
}

void Example3() {
  Banner("Example 3 (§3.1): why Lemma 3 needs fixed structure");
  auto ex = paper::Example2::Make();
  StructureAnalysis tp1 = AnalyzeStructure(ex.db, ex.tp1);
  std::cout << "TP1 fixed-structure: " << (tp1.fixed ? "yes" : "no") << "\n"
            << tp1.explanation << "\n";
  StructureAnalysis repaired = AnalyzeStructure(ex.db, ex.tp1_fixed);
  std::cout << "TP1' (with else b := b) fixed-structure: "
            << (repaired.fixed ? "yes" : "no") << "  signature: "
            << StructToString(ex.db, repaired.signature) << "\n";
}

void Example4() {
  Banner("Example 4 (§3.2): Lemma 7 needs joint consistency");
  auto ex = paper::Example4::Make();
  auto run = *RunInIsolation(ex.db, ex.tp1, 1, ex.ds1);
  ConsistencyChecker checker(ex.db, *ex.ic);
  DbState d_part = ex.ds1.Restrict(ex.d);
  std::cout << "DS1^d        = " << d_part.ToString(ex.db) << "  consistent: "
            << (*checker.IsConsistent(d_part) ? "yes" : "no") << "\n"
            << "read(T1)     = " << run.txn.ReadMap().ToString(ex.db)
            << "  consistent: "
            << (*checker.IsConsistent(run.txn.ReadMap()) ? "yes" : "no")
            << "\n";
  auto joint = DbState::Union(d_part, run.txn.ReadMap());
  std::cout << "their union  = " << joint->ToString(ex.db)
            << "  consistent: "
            << (*checker.IsConsistent(*joint) ? "yes" : "NO") << "\n";
}

void Example5() {
  Banner("Example 5 (§3.3): overlapping conjuncts defeat everything");
  auto ex = paper::Example5::Make();
  std::cout << "IC: " << ex.ic->ToString(ex.db) << "\n"
            << "conjuncts disjoint: " << (ex.ic->disjoint() ? "yes" : "NO")
            << "\n";
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2, &ex.tp3};
  auto run = *Interleave(ex.db, programs, ex.ds0, ex.choices);
  std::cout << "S = " << run.schedule.ToString(ex.db) << "\n";
  TheoremCertificate cert = Certify(ex.db, *ex.ic, run.schedule, &programs);
  std::cout << cert.Summary() << "\n";
  ConsistencyChecker checker(ex.db, *ex.ic);
  std::cout << "final state " << run.final_state.ToString(ex.db)
            << " consistent: "
            << (*checker.IsConsistent(run.final_state) ? "yes" : "NO")
            << "\n";
}

}  // namespace

int main() {
  Example1();
  Example2();
  Example3();
  Example4();
  Example5();
  std::cout << "\nAll five examples replayed.\n";
  return 0;
}
