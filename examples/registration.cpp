// The university registration scenario of §2.3: the paper's illustration
// that strongly correct schedules need not be serializable.
//
// One relation per course (its enrollment count, capped by an integrity
// constraint) and a student-hours relation (hours must stay within the
// semester cap). A registration transaction enrolls a student in several
// courses (one subtransaction per course) and finally updates the student's
// hours. Schedules that interleave different students' subtransactions are
// not serializable with respect to the registration transactions, but each
// course relation sees a serializable projection — the schedule is PWSR —
// and every constraint is local to one relation, so consistency survives.
//
//   $ ./examples/registration

#include <iostream>

#include "nse/nse.h"

using namespace nse;

int main() {
  Database db;
  // Two course relations (enrollment counters, capacity 30) and two
  // students' hour totals (at most 12 hours each).
  if (!db.AddIntItems({"cs101_enrolled", "db202_enrolled"}, 0, 30).ok() ||
      !db.AddIntItems({"alice_hours", "bob_hours"}, 0, 12).ok()) {
    return 1;
  }
  auto ic = IntegrityConstraint::Parse(
      db,
      "cs101_enrolled <= 30 & db202_enrolled <= 30 & "
      "alice_hours <= 12 & bob_hours <= 12");
  if (!ic.ok()) {
    std::cerr << ic.status() << "\n";
    return 1;
  }
  std::cout << "IC: " << ic->ToString(db) << "\n\n";

  // Registration programs: enroll in both courses (guarded by capacity),
  // then record 8 hours. Each subtransaction touches one relation.
  auto enroll = [&](const char* course) {
    return MustIf(db, StrCat(course, " < 30"),
                  {MustAssign(db, course, StrCat(course, " + 1"))},
                  {MustAssign(db, course, course)});
  };
  TransactionProgram alice("RegisterAlice",
                           {enroll("cs101_enrolled"), enroll("db202_enrolled"),
                            MustAssign(db, "alice_hours", "8")});
  TransactionProgram bob("RegisterBob",
                         {enroll("cs101_enrolled"), enroll("db202_enrolled"),
                          MustAssign(db, "bob_hours", "8")});
  std::cout << alice.ToString(db) << "\n" << bob.ToString(db) << "\n";

  DbState initial = DbState::OfNamed(db, {{"cs101_enrolled", Value(10)},
                                          {"db202_enrolled", Value(29)},
                                          {"alice_hours", Value(0)},
                                          {"bob_hours", Value(0)}});
  std::vector<const TransactionProgram*> programs{&alice, &bob};

  // Interleave at subtransaction granularity: Alice enrolls in CS101, Bob
  // enrolls in CS101, Bob enrolls in DB202 (taking the last seat!), Alice's
  // DB202 enrollment bounces off the capacity check, then both record
  // hours. Each enroll is r(course), w(course): 2 ops; hours: 1 op.
  std::vector<size_t> choices{0, 0,   // Alice: cs101 r,w
                              1, 1,   // Bob:   cs101 r,w
                              1, 1,   // Bob:   db202 r,w (seat 30)
                              0, 0,   // Alice: db202 r,w (full, keeps 30)
                              0, 1};  // hours writes
  auto run = Interleave(db, programs, initial, choices);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  std::cout << "S = " << run->schedule.ToString(db) << "\n";
  std::cout << "final: " << run->final_state.ToString(db) << "\n\n";

  // The verdicts: PWSR (each relation's projection serializable) and
  // strongly correct, though the whole schedule may order the two
  // registrations inconsistently across relations.
  PwsrReport pwsr = CheckPwsr(run->schedule, *ic);
  std::cout << PwsrReportToString(db, *ic, pwsr) << "\n";
  std::cout << "serializable as a whole: "
            << (IsConflictSerializable(run->schedule) ? "yes" : "no") << "\n";

  ConsistencyChecker checker(db, *ic);
  auto report = CheckExecution(checker, run->schedule, initial);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  std::cout << "strongly correct: "
            << (report->strongly_correct ? "yes" : "no") << "\n";

  TheoremCertificate cert = Certify(db, *ic, run->schedule, &programs);
  std::cout << "\n" << cert.Summary() << "\n";
  return 0;
}
