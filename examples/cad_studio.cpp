// CAD studio: the paper's motivating domain (§1, [11]). Long-duration
// design transactions sweep several design partitions; strict 2PL makes
// everyone wait for the longest designer, predicate-wise 2PL releases each
// partition after its last touch. The example runs both policies on the
// same workload, verifies the schedule classes, and prints the wait-time
// story.
//
//   $ ./examples/cad_studio

#include <iostream>

#include "nse/nse.h"
#include "scheduler/metrics.h"

using namespace nse;

int main() {
  std::cout << "CAD studio: 6 designers, 12 design partitions, "
               "32-operation design transactions\n\n";
  auto workload = MakeCadWorkload(/*num_txns=*/6, /*ops_per_txn=*/32,
                                  /*num_partitions=*/12, /*seed=*/7);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }

  TablePrinter table({"policy", "makespan", "total waits", "aborts",
                      "schedule class"});

  {
    StrictTwoPhaseLocking policy;
    auto result = RunSimulation(policy, workload->scripts);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::string cls =
        StrCat(IsConflictSerializable(result->schedule) ? "CSR" : "not CSR",
               IsStrict(result->schedule) ? ", strict" : "");
    table.AddRow({policy.name(), StrCat(result->makespan),
                  StrCat(result->total_wait_ticks), StrCat(result->aborts),
                  cls});
  }
  {
    PredicatewiseTwoPhaseLocking policy(&*workload->ic);
    auto result = RunSimulation(policy, workload->scripts);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    bool pwsr = CheckPwsr(result->schedule, *workload->ic).is_pwsr;
    bool csr = IsConflictSerializable(result->schedule);
    table.AddRow({policy.name(), StrCat(result->makespan),
                  StrCat(result->total_wait_ticks), StrCat(result->aborts),
                  StrCat(pwsr ? "PWSR" : "NOT PWSR (bug!)",
                         csr ? " (also CSR)" : ", not CSR")});
  }
  {
    DelayedReadScheduler policy(&*workload->ic);
    auto result = RunSimulation(policy, workload->scripts);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    bool pwsr = CheckPwsr(result->schedule, *workload->ic).is_pwsr;
    bool dr = IsDelayedRead(result->schedule);
    table.AddRow({policy.name(), StrCat(result->makespan),
                  StrCat(result->total_wait_ticks), StrCat(result->aborts),
                  StrCat(pwsr ? "PWSR" : "NOT PWSR", dr ? " + DR" : "")});
  }

  std::cout << table.Render() << "\n";
  std::cout
      << "Every PW-2PL schedule is PWSR by construction (per-conjunct\n"
         "two-phase discipline), so Theorem 1 (these design transactions\n"
         "are straight-line, hence fixed-structure) guarantees each design\n"
         "partition's invariants survive — without the long-duration waits\n"
         "of strict 2PL.\n";
  return 0;
}
