#!/usr/bin/env python3
"""Bench regression guard: compare a fresh bench JSON against the committed
baseline within a tolerance.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--tolerance 2.0]

Rows are joined on their identity fields (every field that is not a
measurement). Only *relative* measurements — the speedup fields — are
guarded, because absolute wall times are incomparable across CI hardware;
a fresh speedup may not fall below baseline/tolerance. Deterministic count
fields (checked / violations / cycles_resolved) must match exactly: they
are outputs of seeded runs, so a mismatch means the engine's determinism
contract broke, not that the hardware was slow.

Exit code 0 when everything holds, 1 on regression or determinism break.
Stdlib only (runs on a bare CI image).
"""

import argparse
import json
import sys

# Fields guarded as relative performance (fresh >= baseline / tolerance).
# bench_sgt's "speedup" and bench_mvcc's "speedup_vs_2pl" are ratios of
# simulated-tick throughputs, which are deterministic per seed — they pass
# any tolerance unless the policy logic itself changes.
SPEEDUP_FIELDS = ("speedup", "speedup_vs_sequential", "speedup_vs_2pl",
                  "speedup_vs_batch")
# Deterministic outputs of seeded runs: must match exactly. The per-policy
# bench_sgt counters pin the policy zoo's structural invariants in CI:
# aborts_ww must stay 0 (wound-wait deadlock freedom), restarts_to is TO's
# whole cost, and the victim counters are the SGT-victim economics.
EXACT_FIELDS = ("checked", "violations", "truncated", "cycles_resolved",
                "conjuncts",
                "completed", "aborts", "restarts", "vetoes",
                "restarts_to", "aborts_ww", "wounds_ww",
                "restarts_victim", "wounds_victim", "aborts_victim",
                "restarts_victim_pred", "wounds_victim_pred",
                "aborts_victim_pred",
                # bench_sgt fault-injection rows: every fault / backoff /
                # admission counter is a pure function of the seeds, so a
                # drift means the chaos machinery changed behavior.
                "completed_2pl", "crashes_2pl", "fault_aborts_2pl",
                "boosts_2pl", "shed_2pl", "backoff_ticks_2pl",
                "max_restarts_2pl",
                "completed_to", "crashes_to", "fault_aborts_to",
                "boosts_to", "shed_to", "backoff_ticks_to",
                "max_restarts_to",
                "completed_sgt", "crashes_sgt", "fault_aborts_sgt",
                "boosts_sgt", "shed_sgt", "backoff_ticks_sgt",
                "max_restarts_sgt",
                # bench_mvcc outcome counters: deterministic tick-sim runs,
                # with read_only_rollbacks doubling as the writers-never-
                # block-readers pin — it must stay 0 on the mvto and
                # snapshot-isolation rows of every mix.
                "rollbacks", "read_only_rollbacks",
                # bench_streaming: the lane stream is a pure function of
                # the seed, so every counter is exact — peak_retained is
                # the windowed checker's memory contract (≈ window + lanes
                # on a log hundreds of thousands of transactions long) and
                # must not drift.
                "events", "ops", "commits", "evictions", "rebuilds",
                "peak_retained", "aborted_reads")
# Measurements (never part of the row identity). cache_computes is
# deterministic single-threaded but depends on request-coalescing timing
# across workers, so it is reported, not guarded.
MEASUREMENT_FIELDS = set(SPEEDUP_FIELDS) | set(EXACT_FIELDS) | {
    "wall_ms", "trials_per_s", "txns_per_s", "ops_per_s", "batch_ms",
    "cache_hit_rate",
    "cache_computes", "makespan",
    "legacy_ms",
    "incremental_ms", "legacy_per_tick_us", "incremental_per_tick_us",
    "edge_updates", "makespan_2pl", "makespan_pw2pl", "makespan_sgt",
    "makespan_ww", "makespan_to", "makespan_victim", "makespan_victim_pred",
    "wait_ticks_2pl", "wait_ticks_sgt", "throughput_2pl",
    "throughput_pw2pl", "throughput_sgt", "throughput_ww",
    "throughput_to", "throughput_victim", "throughput_victim_pred",
}


def row_identity(row):
    return tuple(sorted(
        (k, v) for k, v in row.items() if k not in MEASUREMENT_FIELDS))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed slowdown factor on speedup fields")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    if baseline.get("bench") != fresh.get("bench"):
        print(f"FAIL: bench name mismatch: baseline "
              f"{baseline.get('bench')!r} vs fresh {fresh.get('bench')!r}")
        return 1

    fresh_rows = {row_identity(r): r for r in fresh.get("rows", [])}
    failures = []
    compared = 0
    for base_row in baseline.get("rows", []):
        identity = row_identity(base_row)
        label = ", ".join(f"{k}={v}" for k, v in identity)
        fresh_row = fresh_rows.get(identity)
        if fresh_row is None:
            failures.append(f"row missing from fresh run: {label}")
            continue
        for field in SPEEDUP_FIELDS:
            if field not in base_row:
                continue
            floor = base_row[field] / args.tolerance
            got = fresh_row.get(field, 0.0)
            compared += 1
            status = "ok" if got >= floor else "REGRESSION"
            print(f"[{status}] {label}: {field} baseline "
                  f"{base_row[field]:.3f}, floor {floor:.3f}, "
                  f"fresh {got:.3f}")
            if got < floor:
                failures.append(
                    f"{label}: {field} {got:.3f} < floor {floor:.3f}")
        for field in EXACT_FIELDS:
            if field not in base_row:
                continue
            if fresh_row.get(field) != base_row[field]:
                failures.append(
                    f"{label}: {field} changed {base_row[field]} -> "
                    f"{fresh_row.get(field)} (determinism break)")

    if compared == 0:
        failures.append("no speedup fields compared — baseline empty?")
    if failures:
        print(f"\nFAIL ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: {compared} speedup field(s) within {args.tolerance}x "
          f"of baseline, determinism fields exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
