// nse_check: black-box history classification from the command line.
//
//   nse_check [--window N] [--plane a,b --plane c ...] FILE.jsonl
//
// Reads a versioned JSON-lines history (docs/history-format.md), runs both
// the streaming windowed checker and the batch plane over it (asserting
// they agree — the CLI is also a deployment of the differential contract),
// and prints the classification with witnesses in log-event coordinates.
//
// Exit codes: 0 = serializable and clean, 1 = violation (conflict cycle on
// any plane, or a committed dirty read), 2 = unreadable/malformed input.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/streaming_checker.h"
#include "history/batch_check.h"
#include "history/history.h"
#include "history/history_io.h"

namespace nse {
namespace {

int Usage() {
  std::cerr << "usage: nse_check [--window N] [--plane a,b]... FILE.jsonl\n";
  return 2;
}

/// "a,b,c" → DataSet over the history's catalog.
bool ParsePlane(const Database& db, const std::string& spec, DataSet* plane) {
  std::stringstream names(spec);
  std::string name;
  while (std::getline(names, name, ',')) {
    if (name.empty()) continue;
    bool found = false;
    for (ItemId item = 0; item < db.num_items(); ++item) {
      if (db.NameOf(item) == name) {
        plane->Insert(item);
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "nse_check: unknown item '" << name << "' in plane '"
                << spec << "'\n";
      return false;
    }
  }
  return !plane->empty();
}

std::string DescribeViolation(const StreamingViolation& v) {
  std::ostringstream out;
  out << "conflict cycle ";
  for (size_t i = 0; i < v.cycle.size(); ++i) {
    if (i > 0) out << " -> ";
    out << "T" << v.cycle[i];
  }
  out << ", closed by edge T" << v.edge.first << " -> T" << v.edge.second
      << " at event " << v.event;
  return out.str();
}

std::string DescribePlane(const Database& db, const DataSet& plane) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (ItemId item : plane) {
    if (!first) out << ",";
    out << db.NameOf(item);
    first = false;
  }
  out << "}";
  return out.str();
}

int Run(int argc, char** argv) {
  size_t window = 64;
  std::vector<std::string> plane_specs;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = static_cast<size_t>(std::stoull(argv[++i]));
    } else if (std::strcmp(argv[i], "--plane") == 0 && i + 1 < argc) {
      plane_specs.push_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  Result<History> parsed = ReadHistoryFile(path);
  if (!parsed.ok()) {
    std::cerr << "nse_check: " << path << ": " << parsed.status().ToString()
              << "\n";
    return 2;
  }
  const History& h = *parsed;

  StreamingOptions options;
  options.window = window;
  for (const std::string& spec : plane_specs) {
    DataSet plane;
    if (!ParsePlane(h.db, spec, &plane)) return 2;
    options.planes.push_back(plane);
  }

  StreamingReport report = CheckHistoryStreaming(h, options);
  BatchReport batch = CheckHistoryBatch(h, options.planes);
  // The CLI re-checks the differential contract on every invocation.
  if (report.full.ok != batch.full.ok ||
      report.aborted_reads != batch.aborted_reads) {
    std::cerr << "nse_check: internal error: streaming and batch checkers "
                 "disagree on " << path << "\n";
    return 2;
  }

  size_t txns = 0;
  for (const HistoryEvent& event : h.events) {
    if (event.type == HistoryEventType::kBegin) ++txns;
  }
  std::cout << path << ": " << h.events.size() << " events, " << txns
            << " txns, " << h.db.num_items() << " items\n";

  if (report.full.ok) {
    std::cout << "CSR: ok (committed projection is conflict serializable)\n";
  } else {
    std::cout << "CSR: VIOLATION — " << DescribeViolation(*report.full.violation)
              << "\n";
  }
  for (size_t p = 0; p < report.planes.size(); ++p) {
    std::cout << "plane " << DescribePlane(h.db, options.planes[p]) << ": ";
    if (report.planes[p].ok) {
      std::cout << "ok\n";
    } else {
      std::cout << "VIOLATION — "
                << DescribeViolation(*report.planes[p].violation) << "\n";
    }
  }
  if (!report.planes.empty()) {
    const bool pwsr = std::none_of(
        report.planes.begin(), report.planes.end(),
        [](const StreamingPlaneReport& p) { return !p.ok; });
    std::cout << "per-plane serializability: " << (pwsr ? "ok" : "VIOLATION")
              << "\n";
  }
  if (report.aborted_reads.empty()) {
    std::cout << "aborted reads: none\n";
  } else {
    std::cout << "aborted reads: events";
    for (size_t event : report.aborted_reads) std::cout << " " << event;
    std::cout << "\n";
  }
  std::cout << "verdict: " << (report.ok() ? "clean" : "violation") << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace nse

int main(int argc, char** argv) { return nse::Run(argc, argv); }
